//! Flattened structure-of-arrays tree ensembles for batched and
//! scalar inference.
//!
//! [`crate::tree::GradTree`] stores nodes as a `Vec` of structs, which
//! is fine for growing but wasteful to traverse. Earlier revisions of
//! this module packed nodes into 16-byte array-of-structs records; the
//! current layout goes one step further and splits every node field
//! into its own cache-aligned array — thresholds, split features, and
//! the two child indices live in parallel `Vec`s ([`FlatTrees`]). A
//! traversal step then touches only the arrays it needs, the per-array
//! stride is minimal (1–8 bytes instead of 16), and the fixed-depth
//! lockstep loops below compile to straight-line compare/select code
//! the backend can unroll and vectorize.
//!
//! Leaves are encoded as **self-loops**: a leaf routes every row back
//! to itself (`feat = 0`, `thresh = +∞`, `left = right = self`).
//! Together with the stored per-tree depth this removes the
//! am-I-at-a-leaf branch from lockstep traversal entirely: stepping any
//! cursor exactly `depth` times is guaranteed to land (and stay) on its
//! leaf, so the batch kernel walks a block of rows per tree — and the
//! scalar kernel walks a block of *trees* per row — with no
//! data-dependent branches.
//!
//! # Binned traversal
//!
//! Histogram training ([`crate::hist`]) already quantizes every feature
//! into at most [`BinnedDataset::MAX_BINS`] = 256 buckets, so the
//! thresholds of a hist-grown ensemble are drawn from ≤ 255 distinct
//! cut values per feature. [`FlatTrees::from_trees`] detects this and
//! precomputes a [`BinPlan`]: each node's threshold becomes a `u8` bin
//! index packed — together with the split feature and left-child index
//! — into a single `u32` word, and a query row is quantized once (a
//! short branchless binary search per feature) so a traversal step on
//! the hot path is exactly two loads: the node word and one quantized
//! byte. The plan is *exact*, not approximate: `x <= thresh`
//! and `bin(x) <= bin(thresh)` decide identically for every `f64`
//! (including NaN and ±∞ — see [`quantize_value`]), so binned and
//! unbinned traversal land on the same leaves and all prediction paths
//! stay bitwise identical. Ensembles whose thresholds do not fit the
//! bin budget (e.g. exact-method training on large data) simply carry
//! no plan and use the f64 arrays.
//!
//! Both kernels are **total over non-finite feature values**: a NaN
//! compares "greater" (routes right, as in XGBoost), and the explicit
//! `right` array means a parked leaf cursor stays parked no matter what
//! the comparison says. Derived state (`right`, `depth`, the bin plan)
//! is never trusted from the wire — the persist decoder rebuilds it
//! deterministically after validating the node topology.
//!
//! [`BinnedDataset::MAX_BINS`]: crate::hist::BinnedDataset::MAX_BINS

use crate::tree::{GradTree, LEAF};

/// Cursors stepped in lockstep per block — rows in the batch kernel,
/// trees in the scalar kernel. Big enough to hide load latency behind
/// independent work, small enough that cursor state stays in registers.
const BLOCK: usize = 16;

/// Scalar queries with at most this many features are quantized into a
/// stack buffer; wider rows fall back to unbinned traversal rather than
/// allocating per call (the paper's feature space has 4 features).
const QROW_STACK: usize = 16;

/// The bin index stored for leaf nodes and assigned to NaN feature
/// values. Internal nodes always bin below it (a plan holds at most
/// [`MAX_CUTS`] cuts, so internal bins are ≤ 254): `bin <= u8::MAX` is
/// always true (leaf cursors park), and `u8::MAX <= internal_bin` is
/// always false (NaN routes right, matching the f64 comparison).
const LEAF_BIN: u8 = u8::MAX;

/// Most distinct cut values a feature may have and still be binned:
/// one less than [`crate::hist::BinnedDataset::MAX_BINS`], so bin
/// indices 0..=254 identify cuts and 255 stays reserved for
/// [`LEAF_BIN`]. Ensembles grown from a [`crate::hist::BinnedDataset`]
/// satisfy this by construction.
const MAX_CUTS: usize = crate::hist::BinnedDataset::MAX_BINS - 1;

/// Depth of a grown tree (leaves are `left == LEAF` sentinels), used
/// to order trees shallowest-first before flattening.
fn grad_tree_depth(tree: &GradTree) -> u32 {
    let mut maxd = 0u32;
    let mut stack: Vec<(usize, u32)> = vec![(0, 0)];
    while let Some((i, d)) = stack.pop() {
        let node = &tree.nodes[i];
        if node.left == LEAF {
            maxd = maxd.max(d);
        } else {
            stack.push((node.left as usize, d + 1));
            stack.push((node.right as usize, d + 1));
        }
    }
    maxd
}

/// Node count / index converter. Flat indices are serialized as `u32`;
/// ensembles are bounded far below `u32::MAX` nodes (the assert is the
/// one place that invariant lives, shared by builder and decoder).
fn idx32(i: usize) -> u32 {
    assert!(u32::try_from(i).is_ok(), "flat node index {i} overflows u32");
    i as u32
}

/// Exact per-feature quantization of an ensemble's split thresholds.
///
/// For feature `f`, `cuts[offset[f]..offset[f + 1]]` is the sorted set
/// of distinct thresholds used by any internal node splitting on `f`.
/// A value's bin is the number of cuts strictly below it (NaN maps to
/// [`LEAF_BIN`]), and a node's stored bin is the position of its
/// threshold in that set — so `bin(x) <= bin` decides exactly like
/// `x <= thresh[i]`.
#[derive(Clone, Debug, Default)]
struct BinPlan {
    /// Sorted distinct cuts, all features concatenated.
    cuts: Vec<f64>,
    /// Per-feature extent into `cuts`; length `fcount + 1`.
    offset: Vec<u32>,
    /// One packed word per node — `left << 16 | feat << 8 | bin` — so a
    /// lockstep traversal step is exactly two loads: this word and the
    /// quantized feature value. `bin` is the threshold's position in
    /// its feature's cut set ([`LEAF_BIN`] for leaves, whose `left` is
    /// their own index and `feat` is 0). The right child is *implied*:
    /// the growers allocate children adjacently (`right == left + 1`,
    /// asserted at build and validated on decode), so stepping is
    /// `left + (bin(x) > bin) as usize` — a leaf's `bin` of 255 makes
    /// that predicate false for every `u8`, parking the cursor, and a
    /// NaN's bin of 255 makes it true at every internal node (bins ≤
    /// 254), routing right exactly like the f64 comparison.
    ///
    /// The word is deliberately 4 bytes, not 8: an argmin selector
    /// walks every model's ensemble per uncached query, so the
    /// traversal working set is what the kernels are bound by. That
    /// caps a binnable ensemble at [`MAX_META_NODES`] nodes and
    /// [`MAX_META_FEAT`] split features — bigger ensembles simply
    /// skip the plan and take the f64 path.
    meta: Vec<u32>,
}

/// Largest split-feature index the packed [`BinPlan`] word can hold
/// (8 bits, i.e. `u8::MAX` — the paper's feature space has 4).
const MAX_META_FEAT: u32 = 0xff;

/// Largest node count whose indices fit the packed word's 16-bit
/// child field (index ≤ 65535).
const MAX_META_NODES: usize = 1 << 16;

/// Bin of one query value within a feature's sorted cut set: the count
/// of cuts strictly below `x`, or [`LEAF_BIN`] for NaN.
///
/// Decides identically to the f64 comparison for every input: for the
/// cut at position `j`, `x <= cut` ⟺ `bin(x) <= j` when `x` is not
/// NaN (cuts below `x` all sort before position `j`), and NaN — for
/// which `x <= cut` is always false — maps past every internal bin.
fn quantize_value(cuts: &[f64], x: f64) -> u8 {
    if x.is_nan() {
        return LEAF_BIN;
    }
    // `cuts` is sorted and NaN-free, so the count of cuts `< x` IS the
    // partition point. A linear count beats binary search here: cut
    // sets are at most [`MAX_CUTS`] long (typically a few dozen), and
    // the branch-free independent compares vectorize, where a search's
    // probes are serially dependent loads with a mispredict per level.
    let below: usize = cuts.iter().map(|&c| usize::from(c < x)).sum();
    // `below <= cuts.len() <= MAX_CUTS < 255`: the fallback is
    // unreachable, but keeps the conversion total without a panic path.
    u8::try_from(below).unwrap_or(LEAF_BIN)
}

/// An ensemble of regression trees packed into parallel per-field
/// arrays (structure-of-arrays), with an optional exact [`BinPlan`].
#[derive(Clone, Debug, Default)]
pub struct FlatTrees {
    /// Split threshold per node (`x[feat] <= thresh` routes left);
    /// leaves store `+∞` so every non-NaN comparison routes "left".
    thresh: Vec<f64>,
    /// Split feature per node; leaves store 0 (self-loop encoding).
    feat: Vec<u32>,
    /// Absolute index of the left child; leaves store their own index,
    /// so `left == self` identifies a leaf and traversal parks there.
    left: Vec<u32>,
    /// Absolute index of the right child (`left + 1` for internal
    /// nodes — the growers allocate children adjacently); leaves store
    /// their own index so even a "route right" comparison outcome (a
    /// NaN feature) keeps the cursor parked. Derived, not serialized.
    right: Vec<u32>,
    /// Leaf value per node (already scaled by the caller's factor).
    value: Vec<f64>,
    /// Root node index of each tree.
    roots: Vec<u32>,
    /// Depth of each tree: traversal steps that guarantee leaf arrival.
    depth: Vec<u32>,
    /// Largest split-feature index across all nodes; lets the kernels
    /// validate feature accesses once per call instead of per step.
    max_feat: u32,
    /// Exact u8 quantization of the thresholds, when they fit the
    /// 256-bin space histogram training draws them from.
    bins: Option<BinPlan>,
}

impl FlatTrees {
    /// Flatten an ensemble, scaling every leaf value by `scale`
    /// (boosters pass the learning rate so prediction is a plain sum).
    ///
    /// Consecutive trees with identical *structure* — same topology,
    /// split features, and bit-identical thresholds — are merged into
    /// one tree whose leaf values are the (scaled) sums of the run.
    /// Any row routes to the same leaf in every tree of such a run, so
    /// the merged ensemble computes the same real-valued function with
    /// proportionally fewer traversals. Boosters on small datasets
    /// converge to repeating the same splits round after round, which
    /// makes this the single biggest uncached-inference lever: typical
    /// selector models shrink 3–4× here. (Summing a run's leaf values
    /// at build time can differ from summing them query-time by an
    /// ulp; every prediction path uses the merged arrays, so batch ≡
    /// scalar bitwise equivalence is unaffected.)
    ///
    /// Trees are stored **shallowest first**: a lockstep block steps
    /// every cursor the *deepest* depth in the block, so grouping
    /// trees by depth stops one deep tree from stretching a block of
    /// shallow ones. The sort is stable, which keeps originally
    /// consecutive identical trees adjacent (nothing of equal depth
    /// can move between them), so the merge above still sees every
    /// run. Ensemble sums are order-sensitive only in their f64
    /// rounding; all prediction paths walk the stored order, so they
    /// stay bitwise identical to each other.
    pub fn from_trees<'a>(trees: impl IntoIterator<Item = &'a GradTree>, scale: f64) -> FlatTrees {
        let mut by_depth: Vec<&GradTree> = trees.into_iter().collect();
        by_depth.sort_by_key(|t| grad_tree_depth(t));
        let mut flat = FlatTrees::default();
        for tree in by_depth {
            let base = idx32(flat.thresh.len());
            if let Some(&prev) = flat.roots.last() {
                if flat.merge_into_previous(prev, base, tree, scale) {
                    continue;
                }
            }
            flat.roots.push(base);
            for (i, node) in tree.nodes.iter().enumerate() {
                let leaf = node.left == LEAF;
                if !leaf {
                    // The growers allocate children adjacently and
                    // in-range; the packed layout (and the unchecked
                    // lockstep traversal) depend on it.
                    debug_assert_eq!(node.right, node.left + 1, "node {i} children not adjacent");
                    assert!((node.right as usize) < tree.nodes.len(), "node {i} child out of range");
                    flat.max_feat = flat.max_feat.max(node.feat);
                }
                let me = base + idx32(i);
                flat.thresh.push(if leaf { f64::INFINITY } else { node.thresh });
                flat.feat.push(if leaf { 0 } else { node.feat });
                flat.left.push(if leaf { me } else { base + node.left });
                flat.right.push(if leaf { me } else { base + node.right });
                flat.value.push(node.value * scale);
            }
            flat.depth.push(flat.tree_depth(base as usize));
        }
        flat.bins = flat.build_bin_plan();
        flat
    }

    /// If `tree` has exactly the structure of the already-flattened
    /// tree occupying `prev..end`, fold its scaled leaf values into
    /// that segment and report `true`; otherwise change nothing.
    fn merge_into_previous(&mut self, prev: u32, end: u32, tree: &GradTree, scale: f64) -> bool {
        let (prev, end) = (prev as usize, end as usize);
        if end - prev != tree.nodes.len() {
            return false;
        }
        for (i, node) in tree.nodes.iter().enumerate() {
            let at = prev + i;
            let leaf = node.left == LEAF;
            let was_leaf = self.left[at] as usize == at;
            if leaf != was_leaf {
                return false;
            }
            if !leaf
                && (self.thresh[at].to_bits() != node.thresh.to_bits()
                    || self.feat[at] != node.feat
                    || self.left[at] as usize != prev + node.left as usize)
            {
                return false;
            }
        }
        for (i, node) in tree.nodes.iter().enumerate() {
            self.value[prev + i] += node.value * scale;
        }
        true
    }

    /// Depth of the tree rooted at `root` — the step count after which
    /// every cursor has reached (and self-loops on) a leaf.
    fn tree_depth(&self, root: usize) -> u32 {
        let mut maxd = 0u32;
        let mut stack: Vec<(usize, u32)> = vec![(root, 0)];
        while let Some((i, d)) = stack.pop() {
            let l = self.left[i] as usize;
            if l == i {
                maxd = maxd.max(d);
            } else {
                stack.push((l, d + 1));
                stack.push((l + 1, d + 1));
            }
        }
        maxd
    }

    /// Features the kernels index when traversing: `max_feat + 1`.
    /// Query rows are quantized to exactly this many bins — trailing
    /// features no tree splits on are never binned.
    fn fcount(&self) -> usize {
        if self.thresh.is_empty() {
            0
        } else {
            self.max_feat as usize + 1
        }
    }

    /// Build the exact u8 quantization, or `None` when any feature's
    /// distinct internal thresholds exceed the [`MAX_CUTS`] budget (or
    /// a threshold is non-finite, which the greedy growers never emit).
    fn build_bin_plan(&self) -> Option<BinPlan> {
        let fcount = self.fcount();
        if fcount == 0 || self.max_feat > MAX_META_FEAT || self.thresh.len() > MAX_META_NODES {
            return None;
        }
        let mut per_feat: Vec<Vec<f64>> = vec![Vec::new(); fcount];
        for i in 0..self.thresh.len() {
            if self.left[i] as usize == i {
                continue; // leaf: +∞ sentinel, never a cut
            }
            let t = self.thresh[i];
            if !t.is_finite() {
                return None;
            }
            per_feat[self.feat[i] as usize].push(t);
        }
        let mut cuts = Vec::new();
        let mut offset = Vec::with_capacity(fcount + 1);
        offset.push(0u32);
        for col in &mut per_feat {
            col.sort_by(f64::total_cmp);
            col.dedup();
            if col.len() > MAX_CUTS {
                return None;
            }
            cuts.extend_from_slice(col);
            offset.push(idx32(cuts.len()));
        }
        let mut meta = Vec::with_capacity(self.thresh.len());
        for i in 0..self.thresh.len() {
            if self.left[i] as usize == i {
                // Leaf: `left` is the node itself and the bin of 255
                // guarantees the step predicate is false, so the
                // packed step parks the cursor in place.
                meta.push(self.left[i] << 16 | u32::from(LEAF_BIN));
                continue;
            }
            let f = self.feat[i] as usize;
            let col = &cuts[offset[f] as usize..offset[f + 1] as usize];
            // The node's threshold is a member of its feature's cut
            // set by construction; its bin is its position there.
            let j = col.partition_point(|&c| c < self.thresh[i]);
            debug_assert!(j < col.len() && col[j] == self.thresh[i], "cut set missing a threshold");
            let bin = u8::try_from(j).unwrap_or(LEAF_BIN);
            meta.push(self.left[i] << 16 | self.feat[i] << 8 | u32::from(bin));
        }
        Some(BinPlan { cuts, offset, meta })
    }

    /// Number of trees.
    pub fn num_trees(&self) -> usize {
        self.roots.len()
    }

    /// Total node count across trees.
    pub fn num_nodes(&self) -> usize {
        self.thresh.len()
    }

    /// Whether the ensemble's thresholds fit the ≤256-bin space and the
    /// u8 fast path is active (always true for hist-grown boosters).
    pub fn has_bin_plan(&self) -> bool {
        self.bins.is_some()
    }

    /// Sum of (scaled) leaf values over all trees for one row.
    #[inline]
    pub fn predict_one(&self, x: &[f64]) -> f64 {
        self.predict_one_from(x, 0.0)
    }

    /// Like [`FlatTrees::predict_one`] but accumulates onto `init`,
    /// using the same summation order (tree order) as every other
    /// prediction path — so a scalar prediction seeded with the
    /// booster's base score is bitwise identical to the batched one.
    ///
    /// With a bin plan the row is quantized once and the trees are
    /// walked as [`BLOCK`]-wide lockstep cursor blocks over `u8`
    /// arrays; otherwise each tree is walked by ordinary early-exit
    /// f64 traversal. Both orders visit trees 0..n and add one leaf
    /// value each, so the result is identical either way.
    pub fn predict_one_from(&self, x: &[f64], init: f64) -> f64 {
        let fcount = self.fcount();
        if fcount == 0 {
            return init;
        }
        assert!(
            fcount <= x.len(),
            "model uses feature {} but the row has only {}",
            self.max_feat,
            x.len()
        );
        if let Some(plan) = &self.bins {
            if fcount <= QROW_STACK {
                let mut q = [0u8; QROW_STACK];
                for (f, qv) in q.iter_mut().enumerate().take(fcount) {
                    let col = &plan.cuts[plan.offset[f] as usize..plan.offset[f + 1] as usize];
                    *qv = quantize_value(col, x[f]);
                }
                return self.predict_one_binned(&q[..fcount], init, plan);
            }
        }
        self.predict_one_from_unbinned(x, init)
    }

    /// Unbinned (f64-comparison) scalar reference path. Public for the
    /// layout micro-benchmarks and equivalence proptests; callers
    /// normally use [`FlatTrees::predict_one_from`], which picks the
    /// binned kernel when a plan exists. Bitwise identical to it.
    pub fn predict_one_from_unbinned(&self, x: &[f64], init: f64) -> f64 {
        let mut s = init;
        for &root in &self.roots {
            let mut i = root as usize;
            loop {
                let l = self.left[i] as usize;
                if l == i {
                    s += self.value[i];
                    break;
                }
                let go_left = x[self.feat[i] as usize] <= self.thresh[i];
                i = if go_left { l } else { self.right[i] as usize };
            }
        }
        s
    }

    /// Binned scalar kernel: one quantized row, trees stepped as
    /// lockstep cursor blocks. A single row has no row-level
    /// parallelism to mine, but an ensemble walk is a chain of
    /// dependent loads *per tree* — stepping [`BLOCK`] independent tree
    /// cursors at once overlaps those chains instead of serializing
    /// them, which is where the uncached-serving speedup comes from.
    fn predict_one_binned(&self, q: &[u8], init: f64, plan: &BinPlan) -> f64 {
        let mut s = init;
        let ntrees = self.roots.len();
        let mut c0 = 0usize;
        while c0 < ntrees {
            s = self.step_block(c0, q, s, plan);
            c0 += BLOCK.min(ntrees - c0);
        }
        s
    }

    /// One [`BLOCK`]-wide lockstep block of the binned scalar walk:
    /// trees `c0 ..` (at most [`BLOCK`] of them), accumulating their
    /// leaf values onto `init` in tree order.
    #[inline(always)]
    fn step_block(&self, c0: usize, q: &[u8], init: f64, plan: &BinPlan) -> f64 {
        let m = BLOCK.min(self.roots.len() - c0);
        // A short last block is padded with copies of its first
        // cursor so the step loop below is always exactly [`BLOCK`]
        // wide — a fixed-size loop the compiler fully unrolls, with
        // no per-slot trip-count check. The padded cursors walk a
        // real tree (their work is wasted, not unsafe) and the value
        // sum only reads the first `m`.
        let mut idx = [self.roots[c0] as usize; BLOCK];
        let mut steps = 0u32;
        for (t, slot) in idx.iter_mut().enumerate().take(m) {
            *slot = self.roots[c0 + t] as usize;
            steps = steps.max(self.depth[c0 + t]);
        }
        for _ in 0..steps {
            for slot in idx.iter_mut() {
                let i = *slot;
                // SAFETY: `i` is a root or a child index, both
                // < `num_nodes` by construction (`from_trees`
                // asserts, the decoder validates) and `plan.meta`
                // has `num_nodes` entries. The unpacked feature
                // index is ≤ `max_feat` < `q.len()` (the caller
                // quantized `fcount` values). Eliding per-step
                // bounds checks matters: the kernel is
                // load-latency bound.
                let (qv, w) = unsafe {
                    let w = *plan.meta.get_unchecked(i);
                    let f = ((w >> 8) & 0xff) as usize;
                    (u32::from(*q.get_unchecked(f)), w)
                };
                // Two loads and pure arithmetic per step: the
                // right child is implied (`left + 1`), a leaf's
                // bin of 255 parks the cursor, and a NaN's qv of
                // 255 beats every internal bin — see
                // [`BinPlan::meta`].
                *slot = (w >> 16) as usize + usize::from(qv > (w & 0xff));
            }
        }
        let mut s = init;
        for &i in idx.iter().take(m) {
            s += self.value[i];
        }
        s
    }

    /// Add each row's ensemble sum into `out` (`out[r] += Σ trees(x_r)`).
    ///
    /// `xs` is row-major with `nfeat` features per row; `out.len()` must
    /// equal the row count. With a bin plan every row is quantized once
    /// up front and traversal compares `u8`s; otherwise the f64 arrays
    /// are used directly. Trees form the outer loop so each tree's
    /// arrays stay cache-resident while rows stream through; rows go
    /// through in blocks of [`BLOCK`] independent cursors stepped the
    /// tree's depth in lockstep — leaf self-loops make the extra steps
    /// of early-arriving rows free of branches, so the whole block runs
    /// without data-dependent control flow.
    pub fn predict_batch_into(&self, xs: &[f64], nfeat: usize, out: &mut [f64]) {
        self.check_batch_shape(xs, nfeat, out);
        if self.thresh.is_empty() {
            return;
        }
        if let Some(plan) = &self.bins {
            let fcount = self.fcount();
            let rows = out.len();
            let mut q = vec![0u8; rows * fcount];
            for r in 0..rows {
                let row = &xs[r * nfeat..r * nfeat + fcount];
                let qrow = &mut q[r * fcount..(r + 1) * fcount];
                for f in 0..fcount {
                    let col = &plan.cuts[plan.offset[f] as usize..plan.offset[f + 1] as usize];
                    qrow[f] = quantize_value(col, row[f]);
                }
            }
            self.batch_binned(&q, fcount, out, plan);
        } else {
            self.batch_unbinned(xs, nfeat, out);
        }
    }

    /// Unbinned (f64-comparison) batch reference path. Public for the
    /// layout micro-benchmarks and equivalence proptests; callers
    /// normally use [`FlatTrees::predict_batch_into`], which picks the
    /// binned kernel when a plan exists. Bitwise identical to it.
    pub fn predict_batch_into_unbinned(&self, xs: &[f64], nfeat: usize, out: &mut [f64]) {
        self.check_batch_shape(xs, nfeat, out);
        if self.thresh.is_empty() {
            return;
        }
        self.batch_unbinned(xs, nfeat, out);
    }

    fn check_batch_shape(&self, xs: &[f64], nfeat: usize, out: &[f64]) {
        assert!(nfeat > 0, "nfeat must be positive");
        assert_eq!(xs.len(), out.len() * nfeat, "row-major shape mismatch");
        assert!(
            self.thresh.is_empty() || (self.max_feat as usize) < nfeat,
            "model uses feature {} but rows have only {nfeat}",
            self.max_feat,
        );
    }

    fn batch_unbinned(&self, xs: &[f64], nfeat: usize, out: &mut [f64]) {
        let rows = out.len();
        let full = rows - rows % BLOCK;
        for (t, &root) in self.roots.iter().enumerate() {
            let depth = self.depth[t];
            if depth == 0 {
                // Single-leaf tree (late boosting rounds often converge
                // to these): the whole block gets the same constant.
                let v = self.value[root as usize];
                for o in out.iter_mut() {
                    *o += v;
                }
                continue;
            }
            for r0 in (0..full).step_by(BLOCK) {
                let mut idx = [root as usize; BLOCK];
                for _ in 0..depth {
                    for (b, i) in idx.iter_mut().enumerate() {
                        // SAFETY: `*i` is `root` or a child index; both
                        // are < `num_nodes` by construction (checked in
                        // `from_trees`, validated by the decoder), and
                        // every per-node array has `num_nodes` entries.
                        // The feature index is ≤ `max_feat` < `nfeat`
                        // (asserted on entry) and `r0 + b` < `full` ≤
                        // `rows`, so the `xs` index is < `rows * nfeat`
                        // = `xs.len()` (asserted on entry). Eliding the
                        // per-step bounds checks matters: the kernel is
                        // load-throughput bound.
                        let (go_left, l, r) = unsafe {
                            let f = *self.feat.get_unchecked(*i) as usize;
                            let x = *xs.get_unchecked((r0 + b) * nfeat + f);
                            (
                                x <= *self.thresh.get_unchecked(*i),
                                *self.left.get_unchecked(*i),
                                *self.right.get_unchecked(*i),
                            )
                        };
                        *i = if go_left { l as usize } else { r as usize };
                    }
                }
                for (b, &i) in idx.iter().enumerate() {
                    out[r0 + b] += self.value[i];
                }
            }
            // Tail rows: ordinary early-exit traversal (identical
            // arithmetic — one leaf value added per tree).
            for r in full..rows {
                let x = &xs[r * nfeat..(r + 1) * nfeat];
                let mut i = root as usize;
                loop {
                    let l = self.left[i] as usize;
                    if l == i {
                        out[r] += self.value[i];
                        break;
                    }
                    let go_left = x[self.feat[i] as usize] <= self.thresh[i];
                    i = if go_left { l } else { self.right[i] as usize };
                }
            }
        }
    }

    /// Binned batch kernel over pre-quantized rows (`q` is row-major,
    /// `fcount` bins per row). Same loop structure as the unbinned
    /// kernel; each step loads one packed node word and one quantized
    /// byte, and the next cursor is pure arithmetic on them.
    fn batch_binned(&self, q: &[u8], fcount: usize, out: &mut [f64], plan: &BinPlan) {
        let rows = out.len();
        let full = rows - rows % BLOCK;
        for (t, &root) in self.roots.iter().enumerate() {
            let depth = self.depth[t];
            if depth == 0 {
                let v = self.value[root as usize];
                for o in out.iter_mut() {
                    *o += v;
                }
                continue;
            }
            for r0 in (0..full).step_by(BLOCK) {
                let mut idx = [root as usize; BLOCK];
                for _ in 0..depth {
                    for (b, i) in idx.iter_mut().enumerate() {
                        // SAFETY: same index invariants as the unbinned
                        // kernel (`*i` < `num_nodes`; `plan.meta` has
                        // `num_nodes` entries). The unpacked feature
                        // index is ≤ `max_feat` < `fcount` and
                        // `r0 + b` < `rows`, so the `q` index is
                        // < `rows * fcount` = `q.len()` (built that
                        // way one frame up).
                        let (qv, w) = unsafe {
                            let w = *plan.meta.get_unchecked(*i);
                            let f = ((w >> 8) & 0xff) as usize;
                            (u32::from(*q.get_unchecked((r0 + b) * fcount + f)), w)
                        };
                        // Two loads per step; right child implied, leaf
                        // parks, NaN routes right — see [`BinPlan::meta`].
                        *i = (w >> 16) as usize + usize::from(qv > (w & 0xff));
                    }
                }
                for (b, &i) in idx.iter().enumerate() {
                    out[r0 + b] += self.value[i];
                }
            }
            for r in full..rows {
                let qrow = &q[r * fcount..(r + 1) * fcount];
                let mut i = root as usize;
                loop {
                    let l = self.left[i] as usize;
                    if l == i {
                        out[r] += self.value[i];
                        break;
                    }
                    let bin = plan.meta[i] & 0xff;
                    let go_left = u32::from(qrow[self.feat[i] as usize]) <= bin;
                    i = if go_left { l } else { self.right[i] as usize };
                }
            }
        }
    }
}

impl crate::persist::Persist for FlatTrees {
    fn encode(&self, w: &mut crate::persist::ByteWriter) {
        // `right`, `depth`, `max_feat`, and the bin plan are derived
        // state — recomputed on decode rather than trusted from the
        // wire, because the unsafe lockstep kernels rely on them. The
        // wire format is the PR 1 node record (thresh, feat, left),
        // unchanged by the SoA re-layout.
        w.put_len(self.thresh.len());
        for i in 0..self.thresh.len() {
            w.put_f64(self.thresh[i]);
            w.put_u32(self.feat[i]);
            w.put_u32(self.left[i]);
        }
        w.put_f64s(&self.value);
        w.put_u32s(&self.roots);
    }

    fn decode(
        r: &mut crate::persist::ByteReader<'_>,
    ) -> Result<FlatTrees, crate::persist::CodecError> {
        use crate::persist::CodecError;
        let n = r.get_len(16)?;
        if u32::try_from(n).is_err() {
            return Err(CodecError::invalid(format!("{n} flat nodes exceed u32 indexing")));
        }
        let mut thresh = Vec::with_capacity(n);
        let mut feat = Vec::with_capacity(n);
        let mut left = Vec::with_capacity(n);
        for _ in 0..n {
            thresh.push(r.get_f64()?);
            feat.push(r.get_u32()?);
            left.push(r.get_u32()?);
        }
        let value = r.get_f64s()?;
        if value.len() != n {
            return Err(CodecError::invalid(format!(
                "flat ensemble has {n} node(s) but {} leaf value(s)",
                value.len()
            )));
        }
        let roots = r.get_u32s()?;
        // Roots must partition [0, n) into contiguous per-tree segments.
        if roots.is_empty() && n != 0 {
            return Err(CodecError::invalid("flat ensemble has nodes but no roots"));
        }
        if let Some(&first) = roots.first() {
            if first != 0 {
                return Err(CodecError::invalid("first flat tree does not start at node 0"));
            }
        }
        for t in 0..roots.len() {
            let start = roots[t] as usize;
            let end = roots.get(t + 1).map_or(n, |&e| e as usize);
            if start >= end || end > n {
                return Err(CodecError::invalid(format!(
                    "flat tree {t} spans [{start}, {end}) of {n} node(s)"
                )));
            }
            // Within a segment every node is either a self-loop leaf or
            // an internal node whose children (left, left+1) lie
            // strictly deeper in the same segment — this is exactly the
            // acyclicity/progress invariant `from_trees` establishes and
            // the `get_unchecked` traversal in the lockstep kernels
            // depends on.
            for (i, &l) in left.iter().enumerate().take(end).skip(start) {
                let l = l as usize;
                if l == i {
                    // The self-loop only parks cursors when the stored
                    // threshold compares ≥ every feature value; anything
                    // but +∞ would let the lockstep kernel walk off the
                    // leaf (and potentially out of bounds).
                    if thresh[i] != f64::INFINITY {
                        return Err(CodecError::invalid(format!(
                            "flat leaf {i} threshold is not +inf"
                        )));
                    }
                    continue;
                }
                if l <= i || l + 1 >= end {
                    return Err(CodecError::invalid(format!(
                        "flat node {i} has children [{l}, {}] outside ({i}, {end})",
                        l + 1
                    )));
                }
            }
        }
        // Re-derive the right-child array (leaf: self; internal:
        // left + 1) and max_feat (over every node, so the kernels'
        // one-shot feature bound covers leaves too).
        let mut right = Vec::with_capacity(n);
        let mut max_feat = 0u32;
        for (i, &l) in left.iter().enumerate() {
            right.push(if l as usize == i { l } else { l + 1 });
            max_feat = max_feat.max(feat[i]);
        }
        let mut flat = FlatTrees {
            thresh,
            feat,
            left,
            right,
            value,
            roots,
            depth: Vec::new(),
            max_feat,
            bins: None,
        };
        for t in 0..flat.roots.len() {
            let d = flat.tree_depth(flat.roots[t] as usize);
            flat.depth.push(d);
        }
        flat.bins = flat.build_bin_plan();
        Ok(flat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::tree::{GradTree, SortedColumns, TreeParams};

    fn grown_tree() -> (Dataset, GradTree) {
        let mut d = Dataset::new(2);
        for i in 0..50 {
            let (a, b) = ((i % 10) as f64, (i / 10) as f64);
            d.push(&[a, b], a * 3.0 + b * b);
        }
        let g: Vec<f64> = d.targets().iter().map(|y| -y).collect();
        let h = vec![1.0; d.len()];
        let sorted = SortedColumns::new(&d);
        let params = TreeParams { lambda: 0.0, ..Default::default() };
        let t = GradTree::fit(&d, &sorted, &g, &h, &params, &[0, 1], None);
        (d, t)
    }

    #[test]
    fn flat_matches_pointer_traversal() {
        let (d, t) = grown_tree();
        let flat = FlatTrees::from_trees([&t], 1.0);
        assert_eq!(flat.num_trees(), 1);
        assert_eq!(flat.num_nodes(), t.node_count());
        for (x, _) in d.iter() {
            assert_eq!(flat.predict_one(x), t.predict(x));
        }
    }

    #[test]
    fn scale_multiplies_leaf_values() {
        let (d, t) = grown_tree();
        let flat = FlatTrees::from_trees([&t], 0.25);
        for (x, _) in d.iter() {
            assert!((flat.predict_one(x) - 0.25 * t.predict(x)).abs() < 1e-12);
        }
    }

    #[test]
    fn batch_accumulates_over_initialized_output() {
        let (d, t) = grown_tree();
        let flat = FlatTrees::from_trees([&t, &t], 1.0);
        let mut xs = Vec::new();
        for (x, _) in d.iter() {
            xs.extend_from_slice(x);
        }
        let mut out = vec![10.0; d.len()];
        flat.predict_batch_into(&xs, d.nfeat(), &mut out);
        for (i, (x, _)) in d.iter().enumerate() {
            assert!((out[i] - (10.0 + 2.0 * t.predict(x))).abs() < 1e-12);
        }
    }

    #[test]
    fn batch_matches_scalar_on_blocked_and_tail_rows() {
        let (d, t) = grown_tree();
        let flat = FlatTrees::from_trees([&t], 1.0);
        // 50 rows = 3 full blocks of 16 + a tail of 2: both paths run.
        let mut xs = Vec::new();
        for (x, _) in d.iter() {
            xs.extend_from_slice(x);
        }
        let mut out = vec![0.0; d.len()];
        flat.predict_batch_into(&xs, d.nfeat(), &mut out);
        for (i, (x, _)) in d.iter().enumerate() {
            assert_eq!(out[i], flat.predict_one(x), "row {i}");
        }
    }

    #[test]
    fn binned_and_unbinned_paths_agree_bitwise() {
        let (d, t) = grown_tree();
        // 4 copies: enough trees that the scalar binned kernel runs a
        // non-trivial lockstep block.
        let flat = FlatTrees::from_trees([&t, &t, &t, &t], 0.5);
        assert!(flat.has_bin_plan(), "a 50-row tree must fit the bin budget");
        let mut xs = Vec::new();
        for (x, _) in d.iter() {
            xs.extend_from_slice(x);
        }
        // Off-grid queries too: values between and outside training cuts.
        for shift in [0.0, 0.4, -7.3, 1e9] {
            let moved: Vec<f64> = xs.iter().map(|v| v + shift).collect();
            let mut binned = vec![1.5; d.len()];
            let mut unbinned = vec![1.5; d.len()];
            flat.predict_batch_into(&moved, d.nfeat(), &mut binned);
            flat.predict_batch_into_unbinned(&moved, d.nfeat(), &mut unbinned);
            for i in 0..d.len() {
                assert_eq!(binned[i], unbinned[i], "row {i} shift {shift}");
                let row = &moved[i * d.nfeat()..(i + 1) * d.nfeat()];
                assert_eq!(
                    flat.predict_one_from(row, 1.5),
                    binned[i],
                    "scalar row {i} shift {shift}"
                );
                assert_eq!(
                    flat.predict_one_from_unbinned(row, 1.5),
                    binned[i],
                    "unbinned scalar row {i} shift {shift}"
                );
            }
        }
    }

    #[test]
    fn non_finite_features_route_like_f64_comparisons() {
        let (_, t) = grown_tree();
        let flat = FlatTrees::from_trees([&t, &t], 1.0);
        assert!(flat.has_bin_plan());
        // NaN routes right everywhere, ±∞ route to the extremes; all
        // four prediction paths must agree bitwise and never walk off a
        // leaf (the explicit right-child self-loop).
        let rows: Vec<[f64; 2]> = vec![
            [f64::NAN, 3.0],
            [3.0, f64::NAN],
            [f64::NAN, f64::NAN],
            [f64::INFINITY, f64::NEG_INFINITY],
            [f64::NEG_INFINITY, f64::INFINITY],
            [f64::INFINITY, f64::NAN],
        ];
        let xs: Vec<f64> = rows.iter().flatten().copied().collect();
        let mut binned = vec![0.0; rows.len()];
        let mut unbinned = vec![0.0; rows.len()];
        flat.predict_batch_into(&xs, 2, &mut binned);
        flat.predict_batch_into_unbinned(&xs, 2, &mut unbinned);
        for (i, row) in rows.iter().enumerate() {
            assert!(binned[i].is_finite());
            assert_eq!(binned[i], unbinned[i], "row {i}");
            assert_eq!(flat.predict_one(row), binned[i], "scalar row {i}");
            assert_eq!(flat.predict_one_from_unbinned(row, 0.0), binned[i], "ref row {i}");
        }
    }

    #[test]
    fn depth_zero_stump_predicts_in_batch() {
        // A single-leaf tree exercises the depth-0 fast path.
        let mut d = Dataset::new(1);
        d.push(&[1.0], 3.0);
        let g = vec![-3.0];
        let h = vec![1.0];
        let sorted = SortedColumns::new(&d);
        let params = TreeParams { max_depth: 0, lambda: 0.0, ..Default::default() };
        let t = GradTree::fit(&d, &sorted, &g, &h, &params, &[0], None);
        let flat = FlatTrees::from_trees([&t], 1.0);
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let mut out = vec![0.0; 20];
        flat.predict_batch_into(&xs, 1, &mut out);
        for (i, &o) in out.iter().enumerate() {
            assert_eq!(o, flat.predict_one(&xs[i..i + 1]));
        }
    }

    #[test]
    fn quantize_value_matches_f64_comparisons() {
        let cuts = [-3.5, 0.0, 1.0, 2.5, 100.0];
        for x in [
            -1e300,
            -3.6,
            -3.5,
            -3.4999,
            0.0,
            -0.0,
            0.5,
            1.0,
            2.5,
            99.0,
            100.0,
            101.0,
            1e300,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
        ] {
            let bin = quantize_value(&cuts, x);
            for (j, &c) in cuts.iter().enumerate() {
                let byte = u8::try_from(j).expect("tiny cut set");
                assert_eq!(
                    bin <= byte,
                    x <= c,
                    "x={x} cut[{j}]={c}: bin {bin} disagrees with f64 compare"
                );
            }
        }
    }
}
