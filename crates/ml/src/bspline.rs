//! Cubic B-spline bases on quantile knots — the smoother inside the GAM.

// Index-based loops are clearer for these numeric kernels.
#![allow(clippy::needless_range_loop)]

use serde::{Deserialize, Serialize};

/// Spline order (cubic = 4).
pub const ORDER: usize = 4;

/// A clamped B-spline basis for one feature.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BsplineBasis {
    /// Full (clamped) knot vector.
    knots: Vec<f64>,
    lo: f64,
    hi: f64,
}

impl BsplineBasis {
    /// Build a basis whose interior knots sit at quantiles of `values`.
    /// Returns `None` when the feature is degenerate (fewer than two
    /// distinct values) — the GAM then drops its smooth term.
    pub fn from_quantiles(values: &[f64], interior: usize) -> Option<BsplineBasis> {
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        sorted.dedup();
        if sorted.len() < 2 {
            return None;
        }
        let lo = *sorted.first()?;
        let hi = *sorted.last()?;
        // Interior knots at equally spaced quantiles of the distinct
        // values, deduplicated and kept strictly inside (lo, hi).
        let mut inner = Vec::new();
        for q in 1..=interior {
            let f = q as f64 / (interior as f64 + 1.0);
            let idx = ((sorted.len() - 1) as f64 * f).round() as usize;
            let v = sorted[idx];
            if v > lo && v < hi && inner.last() != Some(&v) {
                inner.push(v);
            }
        }
        let mut knots = Vec::with_capacity(inner.len() + 2 * ORDER);
        knots.extend(std::iter::repeat_n(lo, ORDER));
        knots.extend(inner);
        knots.extend(std::iter::repeat_n(hi, ORDER));
        Some(BsplineBasis { knots, lo, hi })
    }

    /// Number of basis functions.
    pub fn len(&self) -> usize {
        self.knots.len() - ORDER
    }

    /// True when the basis is empty (never produced by `from_quantiles`).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Evaluate all basis functions at `x` (clamped to the training
    /// range, giving constant extrapolation at the boundaries).
    pub fn eval(&self, x: f64) -> Vec<f64> {
        let x = x.clamp(self.lo, self.hi);
        let n = self.len();
        let t = &self.knots;
        let mut b = vec![0.0; n];
        // Degree-0 seed: indicator of the knot span containing x.
        // The clamped vector has zero-width spans at the ends; pick the
        // rightmost span whose left knot ≤ x < right knot (with the final
        // span closed on the right).
        let mut span = usize::MAX;
        for i in 0..(t.len() - 1) {
            if t[i] <= x && (x < t[i + 1] || (x == self.hi && t[i + 1] == self.hi && t[i] < t[i + 1])) {
                span = i;
            }
        }
        if span == usize::MAX {
            // x == lo == all left knots; first real span starts at ORDER-1.
            span = ORDER - 1;
        }
        let mut work = vec![0.0; t.len() - 1];
        work[span] = 1.0;
        // Cox–de Boor recursion up to the cubic degree.
        for k in 1..ORDER {
            for i in 0..(t.len() - 1 - k) {
                let d1 = t[i + k] - t[i];
                let d2 = t[i + k + 1] - t[i + 1];
                let a = if d1 > 0.0 { (x - t[i]) / d1 * work[i] } else { 0.0 };
                let c = if d2 > 0.0 { (t[i + k + 1] - x) / d2 * work[i + 1] } else { 0.0 };
                work[i] = a + c;
            }
        }
        b.copy_from_slice(&work[..n]);
        b
    }

    /// Second-difference penalty matrix `DᵀD` (size `len × len`) as a
    /// dense row-major block, the P-spline wiggliness penalty.
    pub fn penalty(&self) -> Vec<Vec<f64>> {
        let n = self.len();
        let mut s = vec![vec![0.0; n]; n];
        if n < 3 {
            return s;
        }
        for r in 0..(n - 2) {
            // D row: [1, -2, 1] at columns r, r+1, r+2.
            let cols = [r, r + 1, r + 2];
            let vals = [1.0, -2.0, 1.0];
            for (ci, &c1) in cols.iter().enumerate() {
                for (cj, &c2) in cols.iter().enumerate() {
                    s[c1][c2] += vals[ci] * vals[cj];
                }
            }
        }
        s
    }
}

impl crate::persist::Persist for BsplineBasis {
    fn encode(&self, w: &mut crate::persist::ByteWriter) {
        w.put_f64s(&self.knots);
        w.put_f64(self.lo);
        w.put_f64(self.hi);
    }

    fn decode(
        r: &mut crate::persist::ByteReader<'_>,
    ) -> Result<BsplineBasis, crate::persist::CodecError> {
        let knots = r.get_f64s()?;
        // `from_quantiles` always emits ORDER repeats of each boundary;
        // `len()` (= knots.len() - ORDER) underflows on anything shorter.
        if knots.len() < 2 * ORDER {
            return Err(crate::persist::CodecError::invalid(format!(
                "bspline basis has {} knot(s), needs at least {}",
                knots.len(),
                2 * ORDER
            )));
        }
        let lo = r.get_f64()?;
        let hi = r.get_f64()?;
        Ok(BsplineBasis { knots, lo, hi })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize) -> Vec<f64> {
        (0..n).map(|i| i as f64).collect()
    }

    #[test]
    fn partition_of_unity() {
        let b = BsplineBasis::from_quantiles(&grid(50), 8).unwrap();
        for &x in &[0.0, 0.3, 7.7, 25.0, 48.9, 49.0] {
            let v = b.eval(x);
            let s: f64 = v.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "sum {s} at x={x}");
            assert!(v.iter().all(|&e| e >= -1e-12));
        }
    }

    #[test]
    fn clamps_out_of_range() {
        let b = BsplineBasis::from_quantiles(&grid(10), 4).unwrap();
        assert_eq!(b.eval(-5.0), b.eval(0.0));
        assert_eq!(b.eval(100.0), b.eval(9.0));
    }

    #[test]
    fn degenerate_feature_returns_none() {
        assert!(BsplineBasis::from_quantiles(&[3.0, 3.0, 3.0], 8).is_none());
        assert!(BsplineBasis::from_quantiles(&[], 8).is_none());
    }

    #[test]
    fn two_distinct_values_still_work() {
        let b = BsplineBasis::from_quantiles(&[0.0, 1.0, 0.0, 1.0], 8).unwrap();
        assert!(b.len() >= ORDER);
        let s: f64 = b.eval(0.5).iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn penalty_annihilates_linear_functions() {
        // DᵀD β = 0 when β is linear in index: second differences vanish.
        let b = BsplineBasis::from_quantiles(&grid(30), 6).unwrap();
        let n = b.len();
        let s = b.penalty();
        let beta: Vec<f64> = (0..n).map(|i| 2.0 + 3.0 * i as f64).collect();
        for row in 0..n {
            let v: f64 = (0..n).map(|c| s[row][c] * beta[c]).sum();
            assert!(v.abs() < 1e-9, "row {row}: {v}");
        }
    }

    #[test]
    fn basis_is_local() {
        let b = BsplineBasis::from_quantiles(&grid(100), 8).unwrap();
        let v = b.eval(5.0);
        let nonzero = v.iter().filter(|&&e| e > 1e-12).count();
        assert!(nonzero <= ORDER, "cubic splines have ≤ 4 active functions, got {nonzero}");
    }
}
