//! Generalized additive models: penalized cubic B-spline smooths per
//! feature, fitted by penalized IRLS — a from-scratch equivalent of the
//! paper's `mgcv::gam(y ~ s(x1) + ... , family = Gamma(link = "log"))`.

// Index-based loops are clearer for these numeric kernels.
#![allow(clippy::needless_range_loop)]

use serde::{Deserialize, Serialize};

use crate::bspline::BsplineBasis;
use crate::dataset::Dataset;
use crate::error::{validate, FitError};
use crate::linalg::{solve_spd_with_jitter, Mat};

/// Exponential family + link. The paper uses Gamma with a log link for
/// positive, right-skewed runtimes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Family {
    /// Gamma variance, log link (P-IRLS; constant working weights).
    GammaLog,
    /// Gaussian with identity link (one penalized least-squares solve).
    GaussianIdentity,
}

/// GAM hyper-parameters. The smoothing parameter is fixed (no GCV/REML
/// search) in keeping with the paper's no-tuning protocol.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct GamParams {
    /// Interior knots per smooth term.
    pub interior_knots: usize,
    /// P-spline second-difference penalty weight.
    pub penalty: f64,
    /// Family/link.
    pub family: Family,
    /// Maximum P-IRLS iterations.
    pub max_iter: usize,
    /// Convergence tolerance on the linear predictor.
    pub tol: f64,
}

impl Default for GamParams {
    fn default() -> Self {
        GamParams {
            interior_knots: 8,
            penalty: 1.0,
            family: Family::GammaLog,
            max_iter: 50,
            tol: 1e-8,
        }
    }
}

/// A fitted GAM.
#[derive(Debug)]
pub struct GamModel {
    family: Family,
    /// Basis per feature (`None` = degenerate feature, dropped).
    bases: Vec<Option<BsplineBasis>>,
    /// Column means used to center each smooth's block (identifiability).
    col_means: Vec<f64>,
    beta: Vec<f64>,
    iterations: usize,
}

impl GamModel {
    /// Fit by (penalized) IRLS.
    ///
    /// Panics on degenerate datasets; see [`GamModel::try_fit`] for the
    /// fallible variant used on partial benchmark grids.
    pub fn fit(data: &Dataset, params: &GamParams) -> GamModel {
        Self::try_fit(data, params).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible fit: empty/non-finite data and (for the Gamma family)
    /// non-positive targets are [`FitError`]s, not panics. Features with
    /// too few distinct values for a spline basis are dropped, so a
    /// handful of rows degrades toward an intercept-only model instead
    /// of failing.
    pub fn try_fit(data: &Dataset, params: &GamParams) -> Result<GamModel, FitError> {
        validate("GAM", data, params.family == Family::GammaLog)?;
        let n = data.len();
        let d = data.nfeat();

        // Build bases; degenerate features contribute no columns.
        let bases: Vec<Option<BsplineBasis>> = (0..d)
            .map(|f| BsplineBasis::from_quantiles(&data.column(f), params.interior_knots))
            .collect();
        let block_sizes: Vec<usize> = bases.iter().map(|b| b.as_ref().map_or(0, |b| b.len())).collect();
        let ncols = 1 + block_sizes.iter().sum::<usize>();

        // Design matrix (uncentered first).
        let mut x = Mat::zeros(n, ncols);
        for i in 0..n {
            x.col_mut(0)[i] = 1.0;
        }
        let mut col = 1;
        for (f, basis) in bases.iter().enumerate() {
            if let Some(basis) = basis {
                for i in 0..n {
                    let v = basis.eval(data.at(i, f));
                    for (j, bv) in v.iter().enumerate() {
                        x.col_mut(col + j)[i] = *bv;
                    }
                }
                col += basis.len();
            }
        }
        // Center the smooth columns (sum-to-zero constraint) so the
        // intercept stays identifiable against partition-of-unity bases.
        let mut col_means = vec![0.0; ncols];
        for j in 1..ncols {
            let m: f64 = x.col(j).iter().sum::<f64>() / n as f64;
            col_means[j] = m;
            for v in x.col_mut(j) {
                *v -= m;
            }
        }

        // Block-diagonal P-spline penalty.
        let mut s = Mat::zeros(ncols, ncols);
        let mut col = 1;
        for basis in bases.iter().flatten() {
            let pen = basis.penalty();
            let nb = basis.len();
            for r in 0..nb {
                for c in 0..nb {
                    s[(col + r, col + c)] += params.penalty * pen[r][c];
                }
            }
            col += nb;
        }
        // Tiny ridge on the smooths for numerical safety (the penalty's
        // null space contains linear trends).
        for j in 1..ncols {
            s[(j, j)] += 1e-8;
        }

        let y = data.targets();
        let (beta, iterations) = match params.family {
            Family::GaussianIdentity => {
                let mut a = x.gram_weighted(None);
                a.add_assign(&s);
                let b = x.tmul_weighted(y, None);
                (solve_spd_with_jitter(&a, &b, 1e-10), 1)
            }
            Family::GammaLog => {
                // P-IRLS; for Gamma/log the working weights are constant 1
                // and the working response is z = eta + (y - mu)/mu.
                let mut eta: Vec<f64> = y.iter().map(|&v| v.max(1e-12).ln()).collect();
                let mut beta = vec![0.0; ncols];
                let a = {
                    let mut a = x.gram_weighted(None);
                    a.add_assign(&s);
                    a
                };
                let mut iterations = 0;
                for it in 0..params.max_iter {
                    iterations = it + 1;
                    let z: Vec<f64> = eta
                        .iter()
                        .zip(y)
                        .map(|(&e, &yv)| {
                            let mu = e.clamp(-30.0, 30.0).exp();
                            e + (yv - mu) / mu
                        })
                        .collect();
                    let b = x.tmul_weighted(&z, None);
                    let new_beta = solve_spd_with_jitter(&a, &b, 1e-10);
                    let new_eta = x.mul_vec(&new_beta);
                    let delta = new_eta
                        .iter()
                        .zip(&eta)
                        .map(|(a, b)| (a - b).abs())
                        .fold(0.0f64, f64::max);
                    eta = new_eta;
                    beta = new_beta;
                    if delta < params.tol {
                        break;
                    }
                }
                (beta, iterations)
            }
        };
        Ok(GamModel { family: params.family, bases, col_means, beta, iterations })
    }

    /// Predict the response for one feature vector.
    pub fn predict(&self, xrow: &[f64]) -> f64 {
        assert_eq!(xrow.len(), self.bases.len());
        let mut eta = self.beta[0]; // centered intercept column is all 1s
        let mut col = 1;
        for (f, basis) in self.bases.iter().enumerate() {
            if let Some(basis) = basis {
                let v = basis.eval(xrow[f]);
                for (j, bv) in v.iter().enumerate() {
                    eta += (bv - self.col_means[col + j]) * self.beta[col + j];
                }
                col += basis.len();
            }
        }
        match self.family {
            Family::GaussianIdentity => eta,
            Family::GammaLog => eta.clamp(-30.0, 30.0).exp(),
        }
    }

    /// P-IRLS iterations used (diagnostics).
    pub fn iterations(&self) -> usize {
        self.iterations
    }
}

impl crate::persist::Persist for GamModel {
    fn encode(&self, w: &mut crate::persist::ByteWriter) {
        w.put_u8(match self.family {
            Family::GammaLog => 0,
            Family::GaussianIdentity => 1,
        });
        w.put_len(self.bases.len());
        for b in &self.bases {
            crate::persist::put_opt(w, b);
        }
        w.put_f64s(&self.col_means);
        w.put_f64s(&self.beta);
        w.put_len(self.iterations);
    }

    fn decode(
        r: &mut crate::persist::ByteReader<'_>,
    ) -> Result<GamModel, crate::persist::CodecError> {
        use crate::persist::CodecError;
        let family = match r.get_u8()? {
            0 => Family::GammaLog,
            1 => Family::GaussianIdentity,
            b => return Err(CodecError::invalid(format!("GAM family tag {b}"))),
        };
        let nbases = r.get_len(0)?;
        let mut bases = Vec::with_capacity(nbases.min(r.remaining() + 1));
        for _ in 0..nbases {
            bases.push(crate::persist::get_opt::<BsplineBasis>(r)?);
        }
        let col_means = r.get_f64s()?;
        let beta = r.get_f64s()?;
        let iterations = r.get_len(0)?;
        // `predict` indexes beta/col_means by the cumulative basis
        // layout; the column count must match exactly.
        let ncols = 1 + bases
            .iter()
            .map(|b| b.as_ref().map_or(0, BsplineBasis::len))
            .sum::<usize>();
        if beta.len() != ncols || col_means.len() != ncols {
            return Err(CodecError::invalid(format!(
                "GAM column mismatch: bases imply {ncols} column(s), beta has {}, col_means has {}",
                beta.len(),
                col_means.len()
            )));
        }
        Ok(GamModel { family, bases, col_means, beta, iterations })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mape;

    fn multiplicative_surface() -> Dataset {
        // y = exp(f(x0) + g(x1)) with smooth f, g — the GAM's home turf.
        let mut d = Dataset::new(2);
        for i in 0..30 {
            for j in 0..10 {
                let x0 = i as f64 / 3.0;
                let x1 = j as f64;
                let y = (0.3 * x0 + (x1 / 3.0).sin() * 0.5 + 1.0).exp();
                d.push(&[x0, x1], y);
            }
        }
        d
    }

    #[test]
    fn gamma_log_fits_multiplicative_surface() {
        let d = multiplicative_surface();
        let m = GamModel::fit(&d, &GamParams::default());
        let preds: Vec<f64> = (0..d.len()).map(|i| m.predict(d.row(i))).collect();
        let err = mape(d.targets(), &preds);
        assert!(err < 0.03, "MAPE {err}");
        assert!(preds.iter().all(|&p| p > 0.0));
    }

    #[test]
    fn gaussian_identity_fits_additive_surface() {
        let mut d = Dataset::new(2);
        for i in 0..25 {
            for j in 0..8 {
                let (x0, x1) = (i as f64, j as f64);
                d.push(&[x0, x1], 3.0 * x0 + (x1 * 0.7).cos() * 10.0);
            }
        }
        let m = GamModel::fit(&d, &GamParams {
            family: Family::GaussianIdentity,
            ..Default::default()
        });
        let preds: Vec<f64> = (0..d.len()).map(|i| m.predict(d.row(i))).collect();
        assert!(crate::metrics::rmse(d.targets(), &preds) < 1.0);
    }

    #[test]
    fn degenerate_feature_is_dropped_gracefully() {
        let mut d = Dataset::new(2);
        for i in 0..40 {
            d.push(&[i as f64, 7.0], (0.1 * i as f64 + 1.0).exp());
        }
        let m = GamModel::fit(&d, &GamParams::default());
        let p = m.predict(&[20.0, 7.0]);
        assert!(p.is_finite() && p > 0.0);
        // The constant feature contributes nothing either way.
        assert!((m.predict(&[20.0, 100.0]) - p).abs() < 1e-9);
    }

    #[test]
    fn extrapolation_is_clamped_not_explosive() {
        let d = multiplicative_surface();
        let m = GamModel::fit(&d, &GamParams::default());
        let p = m.predict(&[1e6, -1e6]);
        assert!(p.is_finite() && p > 0.0);
    }

    #[test]
    fn irls_converges_quickly_on_clean_data() {
        let d = multiplicative_surface();
        let m = GamModel::fit(&d, &GamParams::default());
        assert!(m.iterations() < 30, "took {} iterations", m.iterations());
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn gamma_rejects_zero_targets() {
        let mut d = Dataset::new(1);
        d.push(&[1.0], 0.0);
        let _ = GamModel::fit(&d, &GamParams::default());
    }
}
