//! A k-d tree for exact nearest-neighbour queries in low dimension.
//!
//! Built once over the (scaled) training features; k-NN queries descend
//! with a bounded max-heap and prune subtrees by splitting-plane
//! distance. For the 4-dimensional feature space of this project this is
//! comfortably faster than brute force on full datasets while returning
//! identical results (asserted by tests).

/// One stored point with its target value.
#[derive(Clone, Debug)]
struct Point {
    x: Vec<f64>,
    y: f64,
}

#[derive(Clone, Debug)]
enum Node {
    Leaf {
        start: usize,
        end: usize,
    },
    Split {
        dim: usize,
        value: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// k-d tree over points with attached scalar targets.
#[derive(Debug)]
pub struct KdTree {
    points: Vec<Point>,
    root: Node,
    dims: usize,
}

const LEAF_SIZE: usize = 16;

impl KdTree {
    /// Build from `(features, target)` rows. All rows must share one
    /// dimensionality.
    pub fn build(rows: Vec<(Vec<f64>, f64)>) -> KdTree {
        assert!(!rows.is_empty(), "kd-tree needs at least one point");
        let dims = rows[0].0.len();
        let mut points: Vec<Point> = rows
            .into_iter()
            .map(|(x, y)| {
                assert_eq!(x.len(), dims);
                Point { x, y }
            })
            .collect();
        let n = points.len();
        let root = Self::split(&mut points, 0, n, 0, dims);
        KdTree { points, root, dims }
    }

    fn split(points: &mut [Point], start: usize, end: usize, depth: usize, dims: usize) -> Node {
        let n = end - start;
        if n <= LEAF_SIZE {
            return Node::Leaf { start, end };
        }
        // Pick the dimension with the largest spread at this node for
        // better balance than round-robin.
        let mut best_dim = depth % dims;
        let mut best_spread = -1.0;
        for d in 0..dims {
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for p in &points[start..end] {
                lo = lo.min(p.x[d]);
                hi = hi.max(p.x[d]);
            }
            let spread = hi - lo;
            if spread > best_spread {
                best_spread = spread;
                best_dim = d;
            }
        }
        if best_spread <= 0.0 {
            // All points identical: no useful split.
            return Node::Leaf { start, end };
        }
        let mid = start + n / 2;
        points[start..end].select_nth_unstable_by(mid - start, |a, b| {
            a.x[best_dim].total_cmp(&b.x[best_dim])
        });
        let value = points[mid].x[best_dim];
        let left = Box::new(Self::split(points, start, mid, depth + 1, dims));
        let right = Box::new(Self::split(points, mid, end, depth + 1, dims));
        Node::Split { dim: best_dim, value, left, right }
    }

    /// The `k` nearest neighbours of `q` (squared Euclidean), returned as
    /// `(distance², target)` pairs in ascending distance order.
    pub fn nearest(&self, q: &[f64], k: usize) -> Vec<(f64, f64)> {
        assert_eq!(q.len(), self.dims);
        let k = k.max(1);
        // Bounded max-heap as a sorted vec (k is tiny — 5 in the paper).
        let mut best: Vec<(f64, f64)> = Vec::with_capacity(k + 1);
        self.search(&self.root, q, k, &mut best);
        best
    }

    fn consider(best: &mut Vec<(f64, f64)>, k: usize, d2: f64, y: f64) {
        let pos = best.partition_point(|&(d, _)| d <= d2);
        best.insert(pos, (d2, y));
        if best.len() > k {
            best.pop();
        }
    }

    fn search(&self, node: &Node, q: &[f64], k: usize, best: &mut Vec<(f64, f64)>) {
        match node {
            Node::Leaf { start, end } => {
                for p in &self.points[*start..*end] {
                    let d2: f64 = p
                        .x
                        .iter()
                        .zip(q)
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum();
                    if best.len() < k || best.last().is_some_and(|&(d, _)| d2 < d) {
                        Self::consider(best, k, d2, p.y);
                    }
                }
            }
            Node::Split { dim, value, left, right } => {
                let diff = q[*dim] - value;
                let (near, far) = if diff <= 0.0 { (left, right) } else { (right, left) };
                self.search(near, q, k, best);
                if best.len() < k || best.last().is_some_and(|&(d, _)| diff * diff < d) {
                    self.search(far, q, k, best);
                }
            }
        }
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if the tree stores no points (unreachable via `build`).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Feature dimensionality of the stored points.
    pub(crate) fn dims(&self) -> usize {
        self.dims
    }
}

// ---------------------------------------------------------------------
// Persistence. The post-build point order is serialized verbatim (not
// rebuilt from raw rows): `build` breaks median ties by whatever order
// `select_nth_unstable_by` leaves, so re-building could reorder
// equal-distance neighbours and change k-NN means. Storing the points
// and the node structure exactly keeps queries bit-identical.
// ---------------------------------------------------------------------

/// Balanced median splits keep the real depth near log2(n); this bound
/// only rejects hostile hand-crafted inputs before they overflow the
/// decode stack.
const MAX_DECODE_DEPTH: usize = 96;

fn encode_node(node: &Node, w: &mut crate::persist::ByteWriter) {
    match node {
        Node::Leaf { start, end } => {
            w.put_u8(0);
            w.put_len(*start);
            w.put_len(*end);
        }
        Node::Split { dim, value, left, right } => {
            w.put_u8(1);
            w.put_len(*dim);
            w.put_f64(*value);
            encode_node(left, w);
            encode_node(right, w);
        }
    }
}

fn decode_node(
    r: &mut crate::persist::ByteReader<'_>,
    dims: usize,
    npoints: usize,
    depth: usize,
) -> Result<Node, crate::persist::CodecError> {
    use crate::persist::CodecError;
    if depth > MAX_DECODE_DEPTH {
        return Err(CodecError::invalid("kd-tree nesting exceeds decode depth bound"));
    }
    match r.get_u8()? {
        0 => {
            let start = r.get_len(0)?;
            let end = r.get_len(0)?;
            if start > end || end > npoints {
                return Err(CodecError::invalid(format!(
                    "kd-tree leaf [{start}, {end}) out of range for {npoints} point(s)"
                )));
            }
            Ok(Node::Leaf { start, end })
        }
        1 => {
            let dim = r.get_len(0)?;
            if dim >= dims {
                return Err(CodecError::invalid(format!(
                    "kd-tree split on dim {dim} of {dims}"
                )));
            }
            let value = r.get_f64()?;
            let left = Box::new(decode_node(r, dims, npoints, depth + 1)?);
            let right = Box::new(decode_node(r, dims, npoints, depth + 1)?);
            Ok(Node::Split { dim, value, left, right })
        }
        b => Err(CodecError::invalid(format!("kd-tree node tag {b}"))),
    }
}

impl crate::persist::Persist for KdTree {
    fn encode(&self, w: &mut crate::persist::ByteWriter) {
        w.put_len(self.dims);
        w.put_len(self.points.len());
        for p in &self.points {
            w.put_f64s(&p.x);
            w.put_f64(p.y);
        }
        encode_node(&self.root, w);
    }

    fn decode(
        r: &mut crate::persist::ByteReader<'_>,
    ) -> Result<KdTree, crate::persist::CodecError> {
        use crate::persist::CodecError;
        let dims = r.get_len(0)?;
        let npoints = r.get_len(0)?;
        if npoints == 0 {
            return Err(CodecError::invalid("kd-tree has no points"));
        }
        let mut points = Vec::with_capacity(npoints.min(r.remaining() / 16 + 1));
        for _ in 0..npoints {
            let x = r.get_f64s()?;
            if x.len() != dims {
                return Err(CodecError::invalid(format!(
                    "kd-tree point has {} dim(s), tree has {dims}",
                    x.len()
                )));
            }
            let y = r.get_f64()?;
            points.push(Point { x, y });
        }
        let root = decode_node(r, dims, npoints, 0)?;
        Ok(KdTree { points, root, dims })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force(rows: &[(Vec<f64>, f64)], q: &[f64], k: usize) -> Vec<(f64, f64)> {
        let mut d: Vec<(f64, f64)> = rows
            .iter()
            .map(|(x, y)| {
                (
                    x.iter().zip(q).map(|(a, b)| (a - b) * (a - b)).sum::<f64>(),
                    *y,
                )
            })
            .collect();
        d.sort_by(|a, b| a.0.total_cmp(&b.0));
        d.truncate(k);
        d
    }

    /// Deterministic pseudo-random points (LCG).
    fn make_points(n: usize, dims: usize, seed: u64) -> Vec<(Vec<f64>, f64)> {
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        (0..n)
            .map(|i| {
                let x: Vec<f64> = (0..dims).map(|_| next() * 10.0).collect();
                (x, i as f64)
            })
            .collect()
    }

    #[test]
    fn matches_brute_force() {
        let rows = make_points(500, 4, 42);
        let tree = KdTree::build(rows.clone());
        for qi in 0..20 {
            let q: Vec<f64> = make_points(1, 4, 1000 + qi)[0].0.clone();
            let got = tree.nearest(&q, 5);
            let want = brute_force(&rows, &q, 5);
            let gd: Vec<f64> = got.iter().map(|g| g.0).collect();
            let wd: Vec<f64> = want.iter().map(|w| w.0).collect();
            for (a, b) in gd.iter().zip(&wd) {
                assert!((a - b).abs() < 1e-9, "distances {gd:?} vs {wd:?}");
            }
        }
    }

    #[test]
    fn k_larger_than_n_returns_all() {
        let rows = make_points(3, 2, 7);
        let tree = KdTree::build(rows);
        let got = tree.nearest(&[0.0, 0.0], 10);
        assert_eq!(got.len(), 3);
    }

    #[test]
    fn single_point_tree() {
        let tree = KdTree::build(vec![(vec![1.0, 2.0], 7.0)]);
        let got = tree.nearest(&[0.0, 0.0], 5);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1, 7.0);
    }

    #[test]
    fn duplicate_points_are_handled() {
        let rows: Vec<(Vec<f64>, f64)> = (0..100).map(|i| (vec![1.0, 1.0], i as f64)).collect();
        let tree = KdTree::build(rows);
        let got = tree.nearest(&[1.0, 1.0], 5);
        assert_eq!(got.len(), 5);
        assert!(got.iter().all(|g| g.0 == 0.0));
    }

    #[test]
    fn exact_match_is_first() {
        let rows = make_points(200, 3, 9);
        let target = rows[17].clone();
        let tree = KdTree::build(rows);
        let got = tree.nearest(&target.0, 3);
        assert_eq!(got[0].0, 0.0);
        assert_eq!(got[0].1, target.1);
    }
}
