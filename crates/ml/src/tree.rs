//! Newton (second-order) regression trees — the weak learner behind both
//! the XGBoost-style booster and the random-forest baseline.
//!
//! The tree is grown level-wise with the exact-greedy split search over
//! presorted feature columns, exactly as in `xgboost`'s `exact` tree
//! method: leaf value `-G/(H+λ)` and split gain
//! `½·(G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ)) − γ`, where `G`/`H` are
//! sums of first/second-order gradient statistics. Plain least-squares
//! trees (for the forest) are the special case `g = -y`, `h = 1`, `λ = 0`.

use crate::dataset::Dataset;

/// Tree growth parameters (defaults mirror xgboost).
#[derive(Clone, Copy, Debug)]
pub struct TreeParams {
    /// Maximum tree depth (xgboost default 6).
    pub max_depth: usize,
    /// Minimum sum of hessians per child (xgboost `min_child_weight`).
    pub min_child_weight: f64,
    /// L2 regularization on leaf values (xgboost `lambda`).
    pub lambda: f64,
    /// Minimum gain to split (xgboost `gamma`).
    pub gamma: f64,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams { max_depth: 6, min_child_weight: 1.0, lambda: 1.0, gamma: 0.0 }
    }
}

pub(crate) const LEAF: u32 = u32::MAX;

#[derive(Clone, Debug)]
pub(crate) struct Node {
    pub(crate) feat: u32,
    pub(crate) thresh: f64,
    pub(crate) left: u32,
    pub(crate) right: u32,
    pub(crate) value: f64,
}

/// A fitted regression tree over gradient statistics.
#[derive(Clone, Debug)]
pub struct GradTree {
    pub(crate) nodes: Vec<Node>,
}

/// Presorted feature columns, shareable across the trees of one booster
/// or forest (sorting once per model instead of once per tree).
pub struct SortedColumns {
    /// For each feature: sample indices in ascending feature order.
    order: Vec<Vec<u32>>,
}

impl SortedColumns {
    /// Sort each feature column of `data` once.
    pub fn new(data: &Dataset) -> SortedColumns {
        let n = data.len();
        let order = (0..data.nfeat())
            .map(|f| {
                let mut idx: Vec<u32> = (0..n as u32).collect();
                idx.sort_by(|&a, &b| {
                    data.at(a as usize, f).total_cmp(&data.at(b as usize, f))
                });
                idx
            })
            .collect();
        SortedColumns { order }
    }
}

/// Per-node split-scan state for one feature pass.
#[derive(Clone, Copy)]
struct ScanState {
    gl: f64,
    hl: f64,
    last_value: f64,
    any: bool,
}

/// Best split candidate per node.
#[derive(Clone, Copy)]
struct BestSplit {
    gain: f64,
    feat: u32,
    thresh: f64,
}

impl GradTree {
    /// Grow a tree on gradient statistics `(g, h)`.
    ///
    /// `features` restricts the split search (random-subspace sampling
    /// for forests); pass all feature indices for boosting. `sample_mask`
    /// marks which rows participate (bootstrap sampling); `None` = all.
    pub fn fit(
        data: &Dataset,
        sorted: &SortedColumns,
        g: &[f64],
        h: &[f64],
        params: &TreeParams,
        features: &[usize],
        sample_weight: Option<&[u32]>,
    ) -> GradTree {
        let n = data.len();
        assert_eq!(g.len(), n);
        assert_eq!(h.len(), n);
        let weight = |i: usize| -> f64 {
            sample_weight.map_or(1.0, |w| w[i] as f64)
        };

        // node_of[i]: current leaf of sample i (LEAF marker = inactive).
        let mut node_of: Vec<u32> = (0..n)
            .map(|i| if weight(i) > 0.0 { 0u32 } else { LEAF })
            .collect();
        let mut nodes: Vec<Node> = Vec::new();

        // Root statistics.
        let (mut g0, mut h0) = (0.0, 0.0);
        for i in 0..n {
            if node_of[i] == 0 {
                g0 += g[i] * weight(i);
                h0 += h[i] * weight(i);
            }
        }
        nodes.push(Node {
            feat: LEAF,
            thresh: 0.0,
            left: LEAF,
            right: LEAF,
            value: leaf_value(g0, h0, params.lambda),
        });
        let mut level: Vec<u32> = vec![0];
        let mut totals: Vec<(f64, f64)> = vec![(g0, h0)];

        for _depth in 0..params.max_depth {
            if level.is_empty() {
                break;
            }
            // Map node id -> dense position in this level.
            let mut pos_of = vec![usize::MAX; nodes.len()];
            for (pos, &nid) in level.iter().enumerate() {
                pos_of[nid as usize] = pos;
            }
            let mut best: Vec<Option<BestSplit>> = vec![None; level.len()];

            for &f in features {
                let mut scan: Vec<ScanState> =
                    vec![ScanState { gl: 0.0, hl: 0.0, last_value: 0.0, any: false }; level.len()];
                for &iu in &sorted.order[f] {
                    let i = iu as usize;
                    let nid = node_of[i];
                    if nid == LEAF || (nid as usize) >= pos_of.len() {
                        continue;
                    }
                    let pos = pos_of[nid as usize];
                    if pos == usize::MAX {
                        continue;
                    }
                    let x = data.at(i, f);
                    let st = &mut scan[pos];
                    let (gt, ht) = totals[pos];
                    if st.any && x > st.last_value {
                        // Candidate split strictly between values.
                        let (gl, hl) = (st.gl, st.hl);
                        let (gr, hr) = (gt - gl, ht - hl);
                        if hl >= params.min_child_weight && hr >= params.min_child_weight {
                            let gain = split_gain(gl, hl, gr, hr, gt, ht, params.lambda)
                                - params.gamma;
                            if gain > 1e-12
                                && best[pos].is_none_or(|b| gain > b.gain)
                            {
                                best[pos] = Some(BestSplit {
                                    gain,
                                    feat: f as u32,
                                    thresh: 0.5 * (st.last_value + x),
                                });
                            }
                        }
                    }
                    let w = weight(i);
                    st.gl += g[i] * w;
                    st.hl += h[i] * w;
                    st.last_value = x;
                    st.any = true;
                }
            }

            // Materialize the chosen splits and the next level.
            let mut next_level = Vec::new();
            let mut next_totals = Vec::new();
            let mut split_of: Vec<Option<(u32, f64, u32, u32)>> = vec![None; level.len()];
            for (pos, &nid) in level.iter().enumerate() {
                if let Some(b) = best[pos] {
                    let li = nodes.len() as u32;
                    let ri = li + 1;
                    nodes.push(Node { feat: LEAF, thresh: 0.0, left: LEAF, right: LEAF, value: 0.0 });
                    nodes.push(Node { feat: LEAF, thresh: 0.0, left: LEAF, right: LEAF, value: 0.0 });
                    let node = &mut nodes[nid as usize];
                    node.feat = b.feat;
                    node.thresh = b.thresh;
                    node.left = li;
                    node.right = ri;
                    split_of[pos] = Some((b.feat, b.thresh, li, ri));
                    next_level.push(li);
                    next_totals.push((0.0, 0.0));
                    next_level.push(ri);
                    next_totals.push((0.0, 0.0));
                }
            }
            if next_level.is_empty() {
                break;
            }
            // Reassign samples and accumulate child totals.
            let mut next_pos = vec![usize::MAX; nodes.len()];
            for (pos, &nid) in next_level.iter().enumerate() {
                next_pos[nid as usize] = pos;
            }
            for i in 0..n {
                let nid = node_of[i];
                if nid == LEAF {
                    continue;
                }
                let pos = pos_of.get(nid as usize).copied().unwrap_or(usize::MAX);
                if pos == usize::MAX {
                    continue;
                }
                if let Some((f, t, li, ri)) = split_of[pos] {
                    let child = if data.at(i, f as usize) <= t { li } else { ri };
                    node_of[i] = child;
                    let cpos = next_pos[child as usize];
                    let w = weight(i);
                    next_totals[cpos].0 += g[i] * w;
                    next_totals[cpos].1 += h[i] * w;
                }
            }
            for (pos, &nid) in next_level.iter().enumerate() {
                let (gt, ht) = next_totals[pos];
                nodes[nid as usize].value = leaf_value(gt, ht, params.lambda);
            }
            level = next_level;
            totals = next_totals;
        }
        GradTree { nodes }
    }

    /// Predict the leaf value for one feature vector.
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.nodes[self.leaf_of(x) as usize].value
    }

    /// Id of the leaf a feature vector falls into. Boosting uses this
    /// to apply per-leaf update factors without a second traversal.
    pub fn leaf_of(&self, x: &[f64]) -> u32 {
        let mut nid = 0usize;
        loop {
            let n = &self.nodes[nid];
            if n.left == LEAF {
                return nid as u32;
            }
            nid = if x[n.feat as usize] <= n.thresh { n.left as usize } else { n.right as usize };
        }
    }

    /// Number of nodes (diagnostics).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Value stored at a node (for leaves: the fitted leaf weight).
    pub fn value_of(&self, nid: u32) -> f64 {
        self.nodes[nid as usize].value
    }
}

impl crate::persist::Persist for GradTree {
    fn encode(&self, w: &mut crate::persist::ByteWriter) {
        w.put_len(self.nodes.len());
        for n in &self.nodes {
            w.put_u32(n.feat);
            w.put_f64(n.thresh);
            w.put_u32(n.left);
            w.put_u32(n.right);
            w.put_f64(n.value);
        }
    }

    fn decode(
        r: &mut crate::persist::ByteReader<'_>,
    ) -> Result<GradTree, crate::persist::CodecError> {
        use crate::persist::CodecError;
        let n = r.get_len(28)?;
        if n == 0 {
            return Err(CodecError::invalid("tree has no nodes"));
        }
        let mut nodes = Vec::with_capacity(n);
        for _ in 0..n {
            let feat = r.get_u32()?;
            let thresh = r.get_f64()?;
            let left = r.get_u32()?;
            let right = r.get_u32()?;
            let value = r.get_f64()?;
            nodes.push(Node { feat, thresh, left, right, value });
        }
        // Level-wise growth always places children after their parent;
        // `leaf_of` terminates only under that monotonicity, so enforce
        // it (plus range) on the way back in.
        for (i, node) in nodes.iter().enumerate() {
            let (l, r_) = (node.left, node.right);
            if l == LEAF || r_ == LEAF {
                if l != r_ {
                    return Err(CodecError::invalid(format!(
                        "tree node {i} has one LEAF child and one real child"
                    )));
                }
                continue;
            }
            let (lu, ru) = (l as usize, r_ as usize);
            if lu <= i || ru <= i || lu >= n || ru >= n {
                return Err(CodecError::invalid(format!(
                    "tree node {i} children ({lu}, {ru}) not strictly below it in [0, {n})"
                )));
            }
        }
        Ok(GradTree { nodes })
    }
}

#[inline]
fn leaf_value(g: f64, h: f64, lambda: f64) -> f64 {
    if h + lambda <= 0.0 {
        0.0
    } else {
        -g / (h + lambda)
    }
}

#[inline]
fn split_gain(gl: f64, hl: f64, gr: f64, hr: f64, gt: f64, ht: f64, lambda: f64) -> f64 {
    0.5 * (gl * gl / (hl + lambda) + gr * gr / (hr + lambda) - gt * gt / (ht + lambda))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn squared_error_stats(y: &[f64]) -> (Vec<f64>, Vec<f64>) {
        // Squared error from a zero prediction: g = -y, h = 1 → leaf =
        // mean(y) with lambda = 0.
        (y.iter().map(|v| -v).collect(), vec![1.0; y.len()])
    }

    fn fit_ls(data: &Dataset, params: &TreeParams) -> GradTree {
        let (g, h) = squared_error_stats(data.targets());
        let sorted = SortedColumns::new(data);
        let feats: Vec<usize> = (0..data.nfeat()).collect();
        GradTree::fit(data, &sorted, &g, &h, params, &feats, None)
    }

    #[test]
    fn splits_a_step_function_exactly() {
        let mut d = Dataset::new(1);
        for i in 0..20 {
            let x = i as f64;
            d.push(&[x], if x < 10.0 { 1.0 } else { 5.0 });
        }
        let params = TreeParams { lambda: 0.0, ..Default::default() };
        let t = fit_ls(&d, &params);
        assert!((t.predict(&[3.0]) - 1.0).abs() < 1e-9);
        assert!((t.predict(&[15.0]) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn depth_zero_returns_mean() {
        let mut d = Dataset::new(1);
        for (x, y) in [(0.0, 2.0), (1.0, 4.0), (2.0, 6.0)] {
            d.push(&[x], y);
        }
        let params = TreeParams { max_depth: 0, lambda: 0.0, ..Default::default() };
        let t = fit_ls(&d, &params);
        assert!((t.predict(&[1.0]) - 4.0).abs() < 1e-9);
        assert_eq!(t.node_count(), 1);
    }

    #[test]
    fn picks_the_informative_feature() {
        // Feature 1 is noise; feature 0 determines y.
        let mut d = Dataset::new(2);
        for i in 0..40 {
            let x0 = (i % 2) as f64;
            let x1 = (i % 7) as f64;
            d.push(&[x0, x1], x0 * 100.0);
        }
        let params = TreeParams { lambda: 0.0, ..Default::default() };
        let t = fit_ls(&d, &params);
        assert!((t.predict(&[0.0, 3.0]) - 0.0).abs() < 1e-9);
        assert!((t.predict(&[1.0, 3.0]) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn min_child_weight_blocks_thin_splits() {
        let mut d = Dataset::new(1);
        d.push(&[0.0], 0.0);
        d.push(&[1.0], 100.0);
        let params = TreeParams { min_child_weight: 2.0, lambda: 0.0, ..Default::default() };
        let t = fit_ls(&d, &params);
        // No split allowed: single leaf with the mean.
        assert_eq!(t.node_count(), 1);
        assert!((t.predict(&[0.0]) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn sample_weights_zero_excludes_rows() {
        let mut d = Dataset::new(1);
        d.push(&[0.0], 0.0);
        d.push(&[1.0], 100.0);
        d.push(&[2.0], 100.0);
        let (g, h) = squared_error_stats(d.targets());
        let sorted = SortedColumns::new(&d);
        let params = TreeParams { lambda: 0.0, min_child_weight: 0.5, ..Default::default() };
        // Exclude the first row: tree sees constant target 100.
        let t = GradTree::fit(&d, &sorted, &g, &h, &params, &[0], Some(&[0, 1, 1]));
        assert!((t.predict(&[0.0]) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn deeper_trees_fit_finer_structure() {
        let mut d = Dataset::new(1);
        for i in 0..64 {
            let x = i as f64;
            d.push(&[x], (i / 8) as f64); // 8-step staircase
        }
        let shallow = fit_ls(&d, &TreeParams { max_depth: 1, lambda: 0.0, ..Default::default() });
        let deep = fit_ls(&d, &TreeParams { max_depth: 6, lambda: 0.0, ..Default::default() });
        let err = |t: &GradTree| -> f64 {
            d.iter().map(|(x, y)| (t.predict(x) - y).abs()).sum::<f64>()
        };
        assert!(err(&deep) < err(&shallow) / 4.0);
    }
}
