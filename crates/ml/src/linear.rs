//! Ridge-regularized linear regression — the baseline the paper notes
//! cannot capture the non-linear runtime surfaces (kept to reproduce the
//! rejection).

use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;
use crate::error::{validate, FitError};
use crate::linalg::{solve_spd_with_jitter, Mat};

/// Linear model parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LinearParams {
    /// Ridge strength.
    pub ridge: f64,
    /// Model `log(y)` instead of `y` (requires positive targets);
    /// predictions are exponentiated back.
    pub log_target: bool,
}

impl Default for LinearParams {
    fn default() -> Self {
        LinearParams { ridge: 1e-6, log_target: true }
    }
}

/// A fitted linear model.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LinearModel {
    beta: Vec<f64>,
    log_target: bool,
}

impl LinearModel {
    /// Ordinary (ridge) least squares with an intercept.
    ///
    /// Panics on degenerate datasets; see [`LinearModel::try_fit`].
    pub fn fit(data: &Dataset, params: &LinearParams) -> LinearModel {
        Self::try_fit(data, params).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible fit: empty/non-finite data and (for the log-target
    /// variant) non-positive targets are [`FitError`]s.
    pub fn try_fit(data: &Dataset, params: &LinearParams) -> Result<LinearModel, FitError> {
        validate("Linear", data, params.log_target)?;
        let n = data.len();
        let d = data.nfeat();
        let mut x = Mat::zeros(n, d + 1);
        for i in 0..n {
            x.col_mut(0)[i] = 1.0;
        }
        for f in 0..d {
            for i in 0..n {
                x.col_mut(f + 1)[i] = data.at(i, f);
            }
        }
        let y: Vec<f64> = if params.log_target {
            data.targets().iter().map(|v| v.ln()).collect()
        } else {
            data.targets().to_vec()
        };
        let mut a = x.gram_weighted(None);
        a.add_diag(params.ridge.max(0.0));
        let b = x.tmul_weighted(&y, None);
        let beta = solve_spd_with_jitter(&a, &b, 1e-12);
        Ok(LinearModel { beta, log_target: params.log_target })
    }

    /// Predict the response.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len() + 1, self.beta.len());
        let mut s = self.beta[0];
        for (v, b) in x.iter().zip(&self.beta[1..]) {
            s += v * b;
        }
        if self.log_target {
            s.clamp(-30.0, 30.0).exp()
        } else {
            s
        }
    }
}

impl crate::persist::Persist for LinearModel {
    fn encode(&self, w: &mut crate::persist::ByteWriter) {
        w.put_f64s(&self.beta);
        w.put_bool(self.log_target);
    }

    fn decode(
        r: &mut crate::persist::ByteReader<'_>,
    ) -> Result<LinearModel, crate::persist::CodecError> {
        let beta = r.get_f64s()?;
        if beta.is_empty() {
            // `predict` reads the intercept unconditionally.
            return Err(crate::persist::CodecError::invalid("linear model has no coefficients"));
        }
        let log_target = r.get_bool()?;
        Ok(LinearModel { beta, log_target })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_linear_coefficients() {
        let mut d = Dataset::new(2);
        for i in 0..30 {
            let (x0, x1) = (i as f64, (i * 3 % 7) as f64);
            d.push(&[x0, x1], 2.0 + 3.0 * x0 - 0.5 * x1);
        }
        let m = LinearModel::fit(&d, &LinearParams { ridge: 0.0, log_target: false });
        assert!((m.predict(&[10.0, 4.0]) - (2.0 + 30.0 - 2.0)).abs() < 1e-6);
    }

    #[test]
    fn log_target_fits_exponential_surface() {
        let mut d = Dataset::new(1);
        for i in 0..20 {
            d.push(&[i as f64], (0.2 * i as f64 + 1.0).exp());
        }
        let m = LinearModel::fit(&d, &LinearParams::default());
        let p = m.predict(&[10.0]);
        let want = (0.2f64 * 10.0 + 1.0).exp();
        assert!((p - want).abs() / want < 0.01, "{p} vs {want}");
    }

    #[test]
    fn cannot_fit_nonmonotone_surface_well() {
        // The paper's point: runtime surfaces with crossovers defeat a
        // global linear model.
        let mut d = Dataset::new(1);
        for i in 0..40 {
            let x = i as f64;
            d.push(&[x], (x - 20.0).powi(2) + 1.0);
        }
        let m = LinearModel::fit(&d, &LinearParams { ridge: 0.0, log_target: false });
        let err = crate::metrics::mape(
            d.targets(),
            &(0..d.len()).map(|i| m.predict(d.row(i))).collect::<Vec<_>>(),
        );
        assert!(err > 0.5, "a line should fit a parabola poorly, MAPE {err}");
    }
}
