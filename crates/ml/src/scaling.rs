//! Feature standardization (z-scores), as the paper applies before KNN.

use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;

/// Per-feature mean/standard-deviation scaler.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StandardScaler {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl StandardScaler {
    /// Fit to a dataset's feature columns. Constant columns get a unit
    /// standard deviation so they scale to a constant zero instead of
    /// dividing by zero.
    pub fn fit(data: &Dataset) -> StandardScaler {
        let d = data.nfeat();
        let n = data.len().max(1) as f64;
        let mut mean = vec![0.0; d];
        for i in 0..data.len() {
            for (f, m) in mean.iter_mut().enumerate() {
                *m += data.at(i, f);
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0; d];
        for i in 0..data.len() {
            for (f, v) in var.iter_mut().enumerate() {
                let c = data.at(i, f) - mean[f];
                *v += c * c;
            }
        }
        let std = var
            .into_iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s > 1e-12 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        StandardScaler { mean, std }
    }

    /// Number of feature columns the scaler was fitted on.
    pub(crate) fn dims(&self) -> usize {
        self.mean.len()
    }

    /// Scale one feature vector.
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.mean.len());
        x.iter()
            .zip(self.mean.iter().zip(&self.std))
            .map(|(v, (m, s))| (v - m) / s)
            .collect()
    }

    /// Scale a whole dataset (targets unchanged).
    pub fn transform_dataset(&self, data: &Dataset) -> Dataset {
        let mut out = Dataset::new(data.nfeat());
        for (x, y) in data.iter() {
            out.push(&self.transform(x), y);
        }
        out
    }
}

impl crate::persist::Persist for StandardScaler {
    fn encode(&self, w: &mut crate::persist::ByteWriter) {
        w.put_f64s(&self.mean);
        w.put_f64s(&self.std);
    }

    fn decode(
        r: &mut crate::persist::ByteReader<'_>,
    ) -> Result<StandardScaler, crate::persist::CodecError> {
        let mean = r.get_f64s()?;
        let std = r.get_f64s()?;
        if std.len() != mean.len() {
            return Err(crate::persist::CodecError::invalid(format!(
                "scaler has {} means but {} stds",
                mean.len(),
                std.len()
            )));
        }
        Ok(StandardScaler { mean, std })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zscores_have_zero_mean_unit_var() {
        let mut d = Dataset::new(2);
        for i in 0..10 {
            d.push(&[i as f64, 100.0 + 3.0 * i as f64], 0.0);
        }
        let sc = StandardScaler::fit(&d);
        let t = sc.transform_dataset(&d);
        for f in 0..2 {
            let col = t.column(f);
            let mean: f64 = col.iter().sum::<f64>() / col.len() as f64;
            let var: f64 = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / col.len() as f64;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-9, "var {var}");
        }
    }

    #[test]
    fn constant_column_is_safe() {
        let mut d = Dataset::new(1);
        d.push(&[5.0], 0.0);
        d.push(&[5.0], 0.0);
        let sc = StandardScaler::fit(&d);
        let t = sc.transform(&[5.0]);
        assert_eq!(t[0], 0.0);
        assert!(sc.transform(&[6.0])[0].is_finite());
    }
}
