//! Gradient-boosted trees with second-order (Newton) updates — a
//! from-scratch reimplementation of the `xgboost` configuration the paper
//! uses: 200 boosting rounds, default tree parameters, and a Tweedie (or
//! Gamma) objective with a log link, which suits strictly positive,
//! right-skewed runtimes.

// Index-based loops are clearer for these numeric kernels.
#![allow(clippy::needless_range_loop)]

use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;
use crate::tree::{GradTree, SortedColumns, TreeParams};

/// Boosting objective. Gamma and Tweedie model `μ = exp(score)` (log
/// link) and assume strictly positive targets.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Objective {
    /// Plain squared error on the raw score.
    SquaredError,
    /// Gamma deviance (xgboost `reg:gamma`).
    Gamma,
    /// Tweedie deviance with variance power `p ∈ (1, 2)` (xgboost
    /// `reg:tweedie`; the paper uses this for its runtime models).
    Tweedie { p: f64 },
}

impl Objective {
    /// First/second-order gradients of the loss at raw score `s` for
    /// target `y`.
    #[inline]
    fn grad(&self, y: f64, s: f64) -> (f64, f64) {
        match *self {
            Objective::SquaredError => (s - y, 1.0),
            Objective::Gamma => {
                // l = y·e^{-s} + s  (up to constants); μ = e^s.
                let e = (-s).exp();
                (1.0 - y * e, (y * e).max(1e-16))
            }
            Objective::Tweedie { p } => {
                let a = (y * ((1.0 - p) * s).exp()).max(0.0);
                let b = ((2.0 - p) * s).exp();
                let g = -a + b;
                let h = (-(1.0 - p) * a + (2.0 - p) * b).max(1e-16)
                ;
                (g, h)
            }
        }
    }

    /// Initial raw score for targets `y`.
    fn base_score(&self, y: &[f64]) -> f64 {
        let mean = y.iter().sum::<f64>() / y.len().max(1) as f64;
        match self {
            Objective::SquaredError => mean,
            _ => mean.max(1e-12).ln(),
        }
    }

    /// Map a raw score to the response scale.
    #[inline]
    fn response(&self, s: f64) -> f64 {
        match self {
            Objective::SquaredError => s,
            // Clamp to keep exp well-behaved on extreme extrapolations.
            _ => s.clamp(-30.0, 30.0).exp(),
        }
    }
}

/// Boosting hyper-parameters (xgboost defaults; deliberately untuned,
/// per the paper's robustness protocol).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct GbtParams {
    /// Number of boosting rounds (the paper trains 200).
    pub rounds: usize,
    /// Learning rate (xgboost default 0.3).
    pub eta: f64,
    /// Objective; the paper settled on Tweedie (Gamma also worked).
    pub objective: Objective,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// L2 regularization on leaf weights.
    pub lambda: f64,
    /// Minimum split gain.
    pub gamma: f64,
    /// Minimum hessian sum per child.
    pub min_child_weight: f64,
}

impl Default for GbtParams {
    fn default() -> Self {
        GbtParams {
            rounds: 200,
            eta: 0.3,
            objective: Objective::Tweedie { p: 1.5 },
            max_depth: 6,
            lambda: 1.0,
            gamma: 0.0,
            min_child_weight: 1.0,
        }
    }
}

/// A fitted boosted ensemble.
#[derive(Debug)]
pub struct GbtModel {
    base: f64,
    eta: f64,
    objective: Objective,
    trees: Vec<GradTree>,
}

impl GbtModel {
    /// Fit with Newton boosting.
    pub fn fit(data: &Dataset, params: &GbtParams) -> GbtModel {
        assert!(!data.is_empty(), "cannot fit GBT on an empty dataset");
        if !matches!(params.objective, Objective::SquaredError) {
            assert!(
                data.targets().iter().all(|&y| y > 0.0),
                "Gamma/Tweedie objectives need strictly positive targets"
            );
        }
        let n = data.len();
        let sorted = SortedColumns::new(data);
        let features: Vec<usize> = (0..data.nfeat()).collect();
        let tree_params = TreeParams {
            max_depth: params.max_depth,
            min_child_weight: params.min_child_weight,
            lambda: params.lambda,
            gamma: params.gamma,
        };
        let base = params.objective.base_score(data.targets());
        let mut score = vec![base; n];
        let mut g = vec![0.0; n];
        let mut h = vec![0.0; n];
        let mut trees = Vec::with_capacity(params.rounds);
        for _round in 0..params.rounds {
            for i in 0..n {
                let (gi, hi) = params.objective.grad(data.targets()[i], score[i]);
                g[i] = gi;
                h[i] = hi;
            }
            let tree = GradTree::fit(data, &sorted, &g, &h, &tree_params, &features, None);
            for i in 0..n {
                score[i] += params.eta * tree.predict(data.row(i));
            }
            trees.push(tree);
        }
        GbtModel { base, eta: params.eta, objective: params.objective, trees }
    }

    /// Predict the response for one feature vector.
    pub fn predict(&self, x: &[f64]) -> f64 {
        let mut s = self.base;
        for t in &self.trees {
            s += self.eta * t.predict(x);
        }
        self.objective.response(s)
    }

    /// Number of trees in the ensemble.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// True if no trees were fitted.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mape;

    fn synthetic_runtime_data() -> Dataset {
        // Runtime-like surface: t = a + b·m/p + c·log(p), strictly
        // positive, multiplicative structure.
        let mut d = Dataset::new(3);
        for mi in 0..12 {
            let m = (1u64 << mi) as f64;
            for p in [4.0f64, 8.0, 16.0, 32.0, 64.0] {
                let t = 5.0 + 0.02 * m / p + 3.0 * p.ln();
                d.push(&[m.ln(), p, m / p], t);
            }
        }
        d
    }

    #[test]
    fn tweedie_fits_runtime_surface() {
        let d = synthetic_runtime_data();
        let model = GbtModel::fit(&d, &GbtParams { rounds: 80, ..Default::default() });
        let preds: Vec<f64> = (0..d.len()).map(|i| model.predict(d.row(i))).collect();
        let err = mape(d.targets(), &preds);
        assert!(err < 0.05, "training MAPE {err}");
    }

    #[test]
    fn gamma_objective_also_fits() {
        let d = synthetic_runtime_data();
        let params = GbtParams { rounds: 80, objective: Objective::Gamma, ..Default::default() };
        let model = GbtModel::fit(&d, &params);
        let preds: Vec<f64> = (0..d.len()).map(|i| model.predict(d.row(i))).collect();
        assert!(mape(d.targets(), &preds) < 0.05);
        assert!(preds.iter().all(|&p| p > 0.0), "gamma predictions must be positive");
    }

    #[test]
    fn squared_error_fits_linear_target() {
        let mut d = Dataset::new(1);
        for i in 0..50 {
            d.push(&[i as f64], 2.0 * i as f64 + 1.0);
        }
        let params = GbtParams {
            rounds: 100,
            objective: Objective::SquaredError,
            ..Default::default()
        };
        let model = GbtModel::fit(&d, &params);
        assert!((model.predict(&[25.0]) - 51.0).abs() < 2.0);
    }

    #[test]
    fn more_rounds_reduce_training_error() {
        let d = synthetic_runtime_data();
        let short = GbtModel::fit(&d, &GbtParams { rounds: 5, ..Default::default() });
        let long = GbtModel::fit(&d, &GbtParams { rounds: 100, ..Default::default() });
        let err = |m: &GbtModel| {
            let preds: Vec<f64> = (0..d.len()).map(|i| m.predict(d.row(i))).collect();
            mape(d.targets(), &preds)
        };
        assert!(err(&long) < err(&short));
        assert_eq!(long.len(), 100);
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn tweedie_rejects_nonpositive_targets() {
        let mut d = Dataset::new(1);
        d.push(&[0.0], 0.0);
        let _ = GbtModel::fit(&d, &GbtParams::default());
    }

    #[test]
    fn positive_predictions_under_extrapolation() {
        let d = synthetic_runtime_data();
        let model = GbtModel::fit(&d, &GbtParams { rounds: 30, ..Default::default() });
        // Far outside the training range: must stay positive and finite.
        let p = model.predict(&[100.0, 10_000.0, 1e9]);
        assert!(p.is_finite() && p > 0.0);
    }
}
