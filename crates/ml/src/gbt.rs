//! Gradient-boosted trees with second-order (Newton) updates — a
//! from-scratch reimplementation of the `xgboost` configuration the paper
//! uses: 200 boosting rounds, default tree parameters, and a Tweedie (or
//! Gamma) objective with a log link, which suits strictly positive,
//! right-skewed runtimes.

// Index-based loops are clearer for these numeric kernels.
#![allow(clippy::needless_range_loop)]

use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;
use crate::error::{validate, FitError};
use crate::flat::FlatTrees;
use crate::hist::{fit_hist, BinnedDataset};
use crate::tree::{GradTree, SortedColumns, TreeParams};

/// Boosting objective. Gamma and Tweedie model `μ = exp(score)` (log
/// link) and assume strictly positive targets.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Objective {
    /// Plain squared error on the raw score.
    SquaredError,
    /// Gamma deviance (xgboost `reg:gamma`).
    Gamma,
    /// Tweedie deviance with variance power `p ∈ (1, 2)` (xgboost
    /// `reg:tweedie`; the paper uses this for its runtime models).
    Tweedie { p: f64 },
}

impl Objective {
    /// First/second-order gradients of the loss at raw score `s` for
    /// target `y`.
    #[inline]
    fn grad(&self, y: f64, s: f64) -> (f64, f64) {
        match *self {
            Objective::SquaredError => (s - y, 1.0),
            Objective::Gamma => {
                // l = y·e^{-s} + s  (up to constants); μ = e^s.
                let e = (-s).exp();
                (1.0 - y * e, (y * e).max(1e-16))
            }
            Objective::Tweedie { p } => {
                // For the default p = 1.5 the two exponents are ±s/2, so
                // one exp (plus a divide) replaces two — this loop runs
                // n·rounds times and the exps dominate it.
                let (a, b) = if p == 1.5 {
                    let e = (0.5 * s).exp();
                    ((y / e).max(0.0), e)
                } else {
                    ((y * ((1.0 - p) * s).exp()).max(0.0), ((2.0 - p) * s).exp())
                };
                let g = -a + b;
                let h = (-(1.0 - p) * a + (2.0 - p) * b).max(1e-16);
                (g, h)
            }
        }
    }

    /// Initial raw score for targets `y`.
    fn base_score(&self, y: &[f64]) -> f64 {
        let mean = y.iter().sum::<f64>() / y.len().max(1) as f64;
        match self {
            Objective::SquaredError => mean,
            _ => mean.max(1e-12).ln(),
        }
    }

    /// Map a raw score to the response scale.
    #[inline]
    fn response(&self, s: f64) -> f64 {
        match self {
            Objective::SquaredError => s,
            // Clamp to keep exp well-behaved on extreme extrapolations.
            _ => s.clamp(-30.0, 30.0).exp(),
        }
    }
}

/// How the weak-learner trees search for splits.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum TreeMethod {
    /// Exact greedy search over presorted columns (`xgboost`'s `exact`):
    /// O(n) per feature per node. The reference implementation.
    Exact,
    /// Quantized histogram search (`xgboost`'s `hist` / LightGBM):
    /// features pre-binned once, splits found by scanning ≤ `max_bins`
    /// buckets, sibling histograms derived by subtraction. Equivalent
    /// splits whenever a feature has ≤ `max_bins` distinct values.
    Hist,
}

/// Boosting hyper-parameters (xgboost defaults; deliberately untuned,
/// per the paper's robustness protocol).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct GbtParams {
    /// Number of boosting rounds (the paper trains 200).
    pub rounds: usize,
    /// Learning rate (xgboost default 0.3).
    pub eta: f64,
    /// Objective; the paper settled on Tweedie (Gamma also worked).
    pub objective: Objective,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// L2 regularization on leaf weights.
    pub lambda: f64,
    /// Minimum split gain.
    pub gamma: f64,
    /// Minimum hessian sum per child.
    pub min_child_weight: f64,
    /// Split-search kernel (default [`TreeMethod::Hist`]).
    pub tree_method: TreeMethod,
    /// Histogram bins per feature for [`TreeMethod::Hist`] (≤ 256).
    pub max_bins: usize,
}

impl Default for GbtParams {
    fn default() -> Self {
        GbtParams {
            rounds: 200,
            eta: 0.3,
            objective: Objective::Tweedie { p: 1.5 },
            max_depth: 6,
            lambda: 1.0,
            gamma: 0.0,
            min_child_weight: 1.0,
            tree_method: TreeMethod::Hist,
            max_bins: BinnedDataset::MAX_BINS,
        }
    }
}

/// A fitted boosted ensemble.
///
/// Trees are kept in flattened structure-of-arrays form ([`FlatTrees`],
/// leaf values pre-scaled by the learning rate), so prediction — scalar
/// or batched — is a tight loop over parallel arrays rather than a
/// pointer chase through node structs.
#[derive(Debug)]
pub struct GbtModel {
    base: f64,
    objective: Objective,
    flat: FlatTrees,
}

/// Mean deviance of predictions (response scale) under an objective —
/// the per-round convergence trace exported when tracing is enabled.
fn mean_deviance(obj: Objective, y: &[f64], pred: &[f64]) -> f64 {
    if y.is_empty() {
        return 0.0;
    }
    let s: f64 = match obj {
        Objective::SquaredError => {
            y.iter().zip(pred).map(|(&yv, &m)| (yv - m) * (yv - m)).sum()
        }
        Objective::Gamma => y
            .iter()
            .zip(pred)
            .map(|(&yv, &m)| {
                let (yv, m) = (yv.max(1e-300), m.max(1e-300));
                2.0 * ((yv - m) / m - (yv / m).ln())
            })
            .sum(),
        // p = 1.5 (the default): all three powers are square roots,
        // ~an order of magnitude cheaper than powf per row.
        Objective::Tweedie { p: 1.5 } => y
            .iter()
            .zip(pred)
            .map(|(&yv, &m)| {
                let (yv, m) = (yv.max(0.0), m.max(1e-300));
                let sm = m.sqrt();
                2.0 * (-4.0 * yv.sqrt() + 2.0 * yv / sm + 2.0 * sm)
            })
            .sum(),
        Objective::Tweedie { p } => y
            .iter()
            .zip(pred)
            .map(|(&yv, &m)| {
                let (yv, m) = (yv.max(0.0), m.max(1e-300));
                2.0 * (yv.powf(2.0 - p) / ((1.0 - p) * (2.0 - p))
                    - yv * m.powf(1.0 - p) / (1.0 - p)
                    + m.powf(2.0 - p) / (2.0 - p))
            })
            .sum(),
    };
    s / y.len() as f64
}

impl GbtModel {
    /// Fit with Newton boosting.
    pub fn fit(data: &Dataset, params: &GbtParams) -> GbtModel {
        GbtModel::fit_with_valid(data, params, None)
    }

    /// Fallible fit: empty/non-finite data and (for Gamma/Tweedie)
    /// non-positive targets are [`FitError`]s, not panics.
    pub fn try_fit(data: &Dataset, params: &GbtParams) -> Result<GbtModel, FitError> {
        validate(
            "XGBoost",
            data,
            !matches!(params.objective, Objective::SquaredError),
        )?;
        Ok(GbtModel::fit_with_valid(data, params, None))
    }

    /// [`GbtModel::fit`] with an optional held-out set. The valid set
    /// never influences training; when tracing is enabled its per-round
    /// deviance is scored alongside the train deviance and exported as
    /// `gbt.round` events (a convergence trace for `mpcp report`).
    pub fn fit_with_valid(
        data: &Dataset,
        params: &GbtParams,
        valid: Option<&Dataset>,
    ) -> GbtModel {
        assert!(!data.is_empty(), "cannot fit GBT on an empty dataset");
        if !matches!(params.objective, Objective::SquaredError) {
            assert!(
                data.targets().iter().all(|&y| y > 0.0),
                "Gamma/Tweedie objectives need strictly positive targets"
            );
        }
        let n = data.len();
        let y = data.targets();
        let features: Vec<usize> = (0..data.nfeat()).collect();
        let tree_params = TreeParams {
            max_depth: params.max_depth,
            min_child_weight: params.min_child_weight,
            lambda: params.lambda,
            gamma: params.gamma,
        };
        let base = params.objective.base_score(y);
        let traced = mpcp_obs::enabled();
        let mut span = mpcp_obs::span("fit")
            .attr("rows", n)
            .attr("nfeat", data.nfeat())
            .attr("rounds", params.rounds)
            .attr(
                "method",
                match params.tree_method {
                    TreeMethod::Hist => "hist",
                    TreeMethod::Exact => "exact",
                },
            );

        // μ-cache fast path: Gamma and the default Tweedie power express
        // their gradients directly through μ = exp(score) (a divide or a
        // square root per row), and μ itself is maintained
        // *multiplicatively* through per-leaf factors exp(η·leaf) — so
        // those objectives train without any per-row exponentials. The
        // other objectives keep raw scores and call `grad` as usual.
        let mu_fast = matches!(params.objective, Objective::Gamma)
            || matches!(params.objective, Objective::Tweedie { p } if p == 1.5);
        let mut score = if mu_fast { Vec::new() } else { vec![base; n] };
        let mut mu = if mu_fast { vec![base.exp(); n] } else { Vec::new() };

        let mut g = vec![0.0; n];
        let mut h = vec![0.0; n];
        let mut leaf: Vec<u32> = vec![0; n];
        let mut factor: Vec<f64> = Vec::new();
        let mut trees = Vec::with_capacity(params.rounds);
        // Bin (or presort) once; every round reuses the preprocessing.
        let binned = matches!(params.tree_method, TreeMethod::Hist).then(|| {
            let _bin_span = mpcp_obs::span("gbt.binning").attr("rows", n);
            let t = mpcp_obs::maybe_now();
            let b = BinnedDataset::from_dataset(data, params.max_bins);
            mpcp_obs::record_elapsed("gbt.binning_ns", t);
            b
        });
        let sorted =
            matches!(params.tree_method, TreeMethod::Exact).then(|| SortedColumns::new(data));

        // Held-out response cache, maintained incrementally per round —
        // scored only when tracing is on (purely observational).
        let mut vmu: Vec<f64> = Vec::new();
        let mut vscore: Vec<f64> = Vec::new();
        if let Some(v) = valid.filter(|_| traced) {
            if mu_fast {
                vmu = vec![base.exp(); v.len()];
            } else {
                vscore = vec![base; v.len()];
            }
        }

        for round in 0..params.rounds {
            match params.objective {
                Objective::Gamma if mu_fast => {
                    for i in 0..n {
                        let ye = y[i] / mu[i];
                        g[i] = 1.0 - ye;
                        h[i] = ye.max(1e-16);
                    }
                }
                Objective::Tweedie { .. } if mu_fast => {
                    // p = 1.5: exp(±s/2) are √μ and 1/√μ.
                    for i in 0..n {
                        let b = mu[i].sqrt();
                        let a = (y[i] / b).max(0.0);
                        g[i] = -a + b;
                        h[i] = (0.5 * a + 0.5 * b).max(1e-16);
                    }
                }
                _ => {
                    for i in 0..n {
                        let (gi, hi) = params.objective.grad(y[i], score[i]);
                        g[i] = gi;
                        h[i] = hi;
                    }
                }
            }
            let tree = match (&binned, &sorted) {
                (Some(binned), _) => {
                    let (tree, row_leaf) =
                        fit_hist(binned, &g, &h, &tree_params, &features, None);
                    leaf = row_leaf;
                    tree
                }
                (_, Some(sorted)) => {
                    let tree =
                        GradTree::fit(data, sorted, &g, &h, &tree_params, &features, None);
                    for i in 0..n {
                        leaf[i] = tree.leaf_of(data.row(i));
                    }
                    tree
                }
                _ => unreachable!("one tree method is always prepared"),
            };
            if mu_fast {
                factor.clear();
                factor.extend(tree.nodes.iter().map(|nd| (params.eta * nd.value).exp()));
                for i in 0..n {
                    mu[i] *= factor[leaf[i] as usize];
                }
            } else {
                for i in 0..n {
                    score[i] += params.eta * tree.nodes[leaf[i] as usize].value;
                }
            }
            if traced {
                let train_dev = if mu_fast {
                    mean_deviance(params.objective, y, &mu)
                } else {
                    let preds: Vec<f64> =
                        score.iter().map(|&s| params.objective.response(s)).collect();
                    mean_deviance(params.objective, y, &preds)
                };
                let mut ev = mpcp_obs::event("gbt.round")
                    .attr("round", round)
                    .attr("train_deviance", train_dev);
                if let Some(v) = valid {
                    if mu_fast {
                        for (j, vm) in vmu.iter_mut().enumerate() {
                            let l = tree.leaf_of(v.row(j)) as usize;
                            *vm *= factor[l];
                        }
                        ev = ev.attr(
                            "valid_deviance",
                            mean_deviance(params.objective, v.targets(), &vmu),
                        );
                    } else {
                        for (j, vs) in vscore.iter_mut().enumerate() {
                            let l = tree.leaf_of(v.row(j)) as usize;
                            *vs += params.eta * tree.nodes[l].value;
                        }
                        let vpreds: Vec<f64> = vscore
                            .iter()
                            .map(|&s| params.objective.response(s))
                            .collect();
                        ev = ev.attr(
                            "valid_deviance",
                            mean_deviance(params.objective, v.targets(), &vpreds),
                        );
                    }
                }
                ev.emit();
            }
            trees.push(tree);
        }
        span.set_attr("trees", trees.len());
        let flat = FlatTrees::from_trees(trees.iter(), params.eta);
        GbtModel { base, objective: params.objective, flat }
    }

    /// Predict the response for one feature vector. Accumulation order
    /// matches [`GbtModel::predict_batch`] exactly, so the two paths
    /// agree bitwise.
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.objective.response(self.flat.predict_one_from(x, self.base))
    }

    /// Predict responses for a row-major block of feature vectors
    /// (`xs.len() == rows · nfeat`). Evaluates tree-by-tree over the
    /// whole block, which is substantially faster than per-row calls.
    pub fn predict_batch(&self, xs: &[f64], nfeat: usize) -> Vec<f64> {
        assert_eq!(xs.len() % nfeat.max(1), 0, "row-major shape mismatch");
        let rows = xs.len() / nfeat.max(1);
        let mut out = vec![0.0; rows];
        self.predict_batch_into(xs, nfeat, &mut out);
        out
    }

    /// [`GbtModel::predict_batch`] into a caller-owned buffer
    /// (overwritten, not accumulated) — the allocation-free form the
    /// selector's fused argmin reuses across models. `out.len()` must
    /// equal the row count.
    pub fn predict_batch_into(&self, xs: &[f64], nfeat: usize, out: &mut [f64]) {
        out.fill(self.base);
        self.flat.predict_batch_into(xs, nfeat, out);
        for s in out.iter_mut() {
            *s = self.objective.response(*s);
        }
    }

    /// The flattened ensemble backing this model (kernel layout
    /// benchmarks and equivalence tests drive it directly).
    pub fn flat(&self) -> &FlatTrees {
        &self.flat
    }

    /// Number of trees in the ensemble.
    pub fn len(&self) -> usize {
        self.flat.num_trees()
    }

    /// True if no trees were fitted.
    pub fn is_empty(&self) -> bool {
        self.flat.num_trees() == 0
    }
}

impl crate::persist::Persist for Objective {
    fn encode(&self, w: &mut crate::persist::ByteWriter) {
        match *self {
            Objective::SquaredError => w.put_u8(0),
            Objective::Gamma => w.put_u8(1),
            Objective::Tweedie { p } => {
                w.put_u8(2);
                w.put_f64(p);
            }
        }
    }

    fn decode(
        r: &mut crate::persist::ByteReader<'_>,
    ) -> Result<Objective, crate::persist::CodecError> {
        match r.get_u8()? {
            0 => Ok(Objective::SquaredError),
            1 => Ok(Objective::Gamma),
            2 => Ok(Objective::Tweedie { p: r.get_f64()? }),
            b => Err(crate::persist::CodecError::invalid(format!("objective tag {b}"))),
        }
    }
}

impl crate::persist::Persist for GbtModel {
    fn encode(&self, w: &mut crate::persist::ByteWriter) {
        w.put_f64(self.base);
        self.objective.encode(w);
        self.flat.encode(w);
    }

    fn decode(
        r: &mut crate::persist::ByteReader<'_>,
    ) -> Result<GbtModel, crate::persist::CodecError> {
        let base = r.get_f64()?;
        let objective = Objective::decode(r)?;
        let flat = FlatTrees::decode(r)?;
        Ok(GbtModel { base, objective, flat })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mape;

    fn synthetic_runtime_data() -> Dataset {
        // Runtime-like surface: t = a + b·m/p + c·log(p), strictly
        // positive, multiplicative structure.
        let mut d = Dataset::new(3);
        for mi in 0..12 {
            let m = (1u64 << mi) as f64;
            for p in [4.0f64, 8.0, 16.0, 32.0, 64.0] {
                let t = 5.0 + 0.02 * m / p + 3.0 * p.ln();
                d.push(&[m.ln(), p, m / p], t);
            }
        }
        d
    }

    #[test]
    fn tweedie_deviance_fast_path_matches_general_formula() {
        let y = [0.5, 1.0, 3.7, 10.0, 250.0];
        let m = [0.6, 1.2, 3.0, 9.0, 260.0];
        let fast = mean_deviance(Objective::Tweedie { p: 1.5 }, &y, &m);
        let p = 1.5;
        let general = y
            .iter()
            .zip(&m)
            .map(|(&yv, &mv)| {
                2.0 * (yv.powf(2.0 - p) / ((1.0 - p) * (2.0 - p))
                    - yv * mv.powf(1.0 - p) / (1.0 - p)
                    + mv.powf(2.0 - p) / (2.0 - p))
            })
            .sum::<f64>()
            / y.len() as f64;
        assert!((fast - general).abs() < 1e-12 * general.abs().max(1.0), "{fast} vs {general}");
    }

    #[test]
    fn fit_with_valid_emits_per_round_deviance_trace() {
        let d = synthetic_runtime_data();
        let (mut train, mut valid) = (Dataset::new(3), Dataset::new(3));
        for i in 0..d.len() {
            let dst = if i % 4 == 0 { &mut valid } else { &mut train };
            dst.push(d.row(i), d.targets()[i]);
        }
        mpcp_obs::set_enabled(true);
        // Concurrent tests on other threads may also record while the
        // global switch is on; a sentinel pins down this thread's tid so
        // the assertions below only see this fit's events.
        mpcp_obs::event("gbt.test.sentinel").emit();
        let params = GbtParams { rounds: 12, ..Default::default() };
        GbtModel::fit_with_valid(&train, &params, Some(&valid));
        mpcp_obs::set_enabled(false);
        let mut events = mpcp_obs::drain();
        mpcp_obs::metrics::reset();
        let tid = events
            .iter()
            .find(|e| e.name == "gbt.test.sentinel")
            .expect("sentinel missing")
            .tid;
        events.retain(|e| e.tid == tid);
        let rounds: Vec<_> = events.iter().filter(|e| e.name == "gbt.round").collect();
        assert_eq!(rounds.len(), 12);
        let dev_of = |e: &mpcp_obs::TraceEvent, key: &str| {
            e.attrs
                .iter()
                .find(|(k, _)| *k == key)
                .and_then(|(_, v)| match v {
                    mpcp_obs::AttrValue::F64(x) => Some(*x),
                    _ => None,
                })
                .expect("deviance attr")
        };
        // Training deviance must fall monotonically-ish: last < first.
        let first = dev_of(rounds[0], "train_deviance");
        let last = dev_of(rounds[11], "train_deviance");
        assert!(last < first, "train deviance did not improve: {first} -> {last}");
        assert!(dev_of(rounds[11], "valid_deviance") < dev_of(rounds[0], "valid_deviance"));
        assert!(events.iter().any(|e| e.name == "fit"), "fit span missing");
        assert!(events.iter().any(|e| e.name == "gbt.binning"), "binning span missing");
    }

    #[test]
    fn tweedie_fits_runtime_surface() {
        let d = synthetic_runtime_data();
        let model = GbtModel::fit(&d, &GbtParams { rounds: 80, ..Default::default() });
        let preds: Vec<f64> = (0..d.len()).map(|i| model.predict(d.row(i))).collect();
        let err = mape(d.targets(), &preds);
        assert!(err < 0.05, "training MAPE {err}");
    }

    #[test]
    fn gamma_objective_also_fits() {
        let d = synthetic_runtime_data();
        let params = GbtParams { rounds: 80, objective: Objective::Gamma, ..Default::default() };
        let model = GbtModel::fit(&d, &params);
        let preds: Vec<f64> = (0..d.len()).map(|i| model.predict(d.row(i))).collect();
        assert!(mape(d.targets(), &preds) < 0.05);
        assert!(preds.iter().all(|&p| p > 0.0), "gamma predictions must be positive");
    }

    #[test]
    fn squared_error_fits_linear_target() {
        let mut d = Dataset::new(1);
        for i in 0..50 {
            d.push(&[i as f64], 2.0 * i as f64 + 1.0);
        }
        let params = GbtParams {
            rounds: 100,
            objective: Objective::SquaredError,
            ..Default::default()
        };
        let model = GbtModel::fit(&d, &params);
        assert!((model.predict(&[25.0]) - 51.0).abs() < 2.0);
    }

    #[test]
    fn more_rounds_reduce_training_error() {
        let d = synthetic_runtime_data();
        let short = GbtModel::fit(&d, &GbtParams { rounds: 5, ..Default::default() });
        let long = GbtModel::fit(&d, &GbtParams { rounds: 100, ..Default::default() });
        let err = |m: &GbtModel| {
            let preds: Vec<f64> = (0..d.len()).map(|i| m.predict(d.row(i))).collect();
            mape(d.targets(), &preds)
        };
        assert!(err(&long) < err(&short));
        // Flattening merges structurally identical consecutive rounds,
        // so the stored tree count is at most (and usually well below)
        // the round count.
        assert!(long.len() <= 100 && !long.is_empty(), "stored {} trees", long.len());
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn tweedie_rejects_nonpositive_targets() {
        let mut d = Dataset::new(1);
        d.push(&[0.0], 0.0);
        let _ = GbtModel::fit(&d, &GbtParams::default());
    }

    #[test]
    fn positive_predictions_under_extrapolation() {
        let d = synthetic_runtime_data();
        let model = GbtModel::fit(&d, &GbtParams { rounds: 30, ..Default::default() });
        // Far outside the training range: must stay positive and finite.
        let p = model.predict(&[100.0, 10_000.0, 1e9]);
        assert!(p.is_finite() && p > 0.0);
    }
}
