//! Typed fitting errors.
//!
//! Every learner exposes a fallible `try_fit` next to its panicking
//! `fit`: degenerate inputs (empty per-configuration datasets, corrupt
//! targets) are expected in partial benchmark grids, and the selection
//! layer maps a [`FitError`] to "no model for this configuration"
//! instead of aborting the whole training run.

use std::fmt;

use crate::dataset::Dataset;

/// Why a learner could not be fitted on a dataset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FitError {
    /// The dataset has no rows at all.
    EmptyDataset {
        /// Learner display name.
        learner: &'static str,
    },
    /// The dataset has rows, but fewer than the learner needs.
    TooFewRows {
        /// Learner display name.
        learner: &'static str,
        /// Rows available.
        rows: usize,
        /// Rows required.
        needed: usize,
    },
    /// A positive-target objective (Gamma/Tweedie/log link) was given a
    /// zero or negative target.
    NonPositiveTarget {
        /// Learner display name.
        learner: &'static str,
    },
    /// A feature or target is NaN or infinite.
    NonFiniteData {
        /// Learner display name.
        learner: &'static str,
    },
}

impl FitError {
    /// The learner that refused the dataset.
    pub fn learner(&self) -> &'static str {
        match self {
            FitError::EmptyDataset { learner }
            | FitError::TooFewRows { learner, .. }
            | FitError::NonPositiveTarget { learner }
            | FitError::NonFiniteData { learner } => learner,
        }
    }
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::EmptyDataset { learner } => {
                write!(f, "cannot fit {learner} on an empty dataset")
            }
            FitError::TooFewRows { learner, rows, needed } => {
                write!(f, "cannot fit {learner}: {rows} row(s), needs at least {needed}")
            }
            FitError::NonPositiveTarget { learner } => {
                write!(f, "{learner}: positive-target objective needs strictly positive targets")
            }
            FitError::NonFiniteData { learner } => {
                write!(f, "{learner}: dataset contains NaN or infinite values")
            }
        }
    }
}

impl std::error::Error for FitError {}

impl crate::persist::Persist for FitError {
    fn encode(&self, w: &mut crate::persist::ByteWriter) {
        match self {
            FitError::EmptyDataset { learner } => {
                w.put_u8(0);
                w.put_str(learner);
            }
            FitError::TooFewRows { learner, rows, needed } => {
                w.put_u8(1);
                w.put_str(learner);
                w.put_len(*rows);
                w.put_len(*needed);
            }
            FitError::NonPositiveTarget { learner } => {
                w.put_u8(2);
                w.put_str(learner);
            }
            FitError::NonFiniteData { learner } => {
                w.put_u8(3);
                w.put_str(learner);
            }
        }
    }

    fn decode(
        r: &mut crate::persist::ByteReader<'_>,
    ) -> Result<FitError, crate::persist::CodecError> {
        use crate::persist::CodecError;
        let tag = r.get_u8()?;
        let name = r.get_string()?;
        let learner = crate::model::learner_name_static(&name)
            .ok_or_else(|| CodecError::invalid(format!("unknown learner name {name:?}")))?;
        Ok(match tag {
            0 => FitError::EmptyDataset { learner },
            1 => {
                let rows = r.get_len(0)?;
                let needed = r.get_len(0)?;
                FitError::TooFewRows { learner, rows, needed }
            }
            2 => FitError::NonPositiveTarget { learner },
            3 => FitError::NonFiniteData { learner },
            b => return Err(CodecError::invalid(format!("fit-error tag {b}"))),
        })
    }
}

/// Shared pre-fit validation: non-empty, finite, and (optionally)
/// strictly positive targets.
pub(crate) fn validate(
    learner: &'static str,
    data: &Dataset,
    needs_positive_targets: bool,
) -> Result<(), FitError> {
    if data.is_empty() {
        return Err(FitError::EmptyDataset { learner });
    }
    for i in 0..data.len() {
        if !data.row(i).iter().all(|v| v.is_finite()) {
            return Err(FitError::NonFiniteData { learner });
        }
    }
    if !data.targets().iter().all(|y| y.is_finite()) {
        return Err(FitError::NonFiniteData { learner });
    }
    if needs_positive_targets && !data.targets().iter().all(|&y| y > 0.0) {
        return Err(FitError::NonPositiveTarget { learner });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_actionable() {
        let e = FitError::NonPositiveTarget { learner: "GAM" };
        assert!(format!("{e}").contains("strictly positive"));
        assert_eq!(e.learner(), "GAM");
        let e = FitError::TooFewRows { learner: "KNN", rows: 2, needed: 5 };
        assert!(format!("{e}").contains("2 row(s)"));
    }

    #[test]
    fn validate_catches_degenerate_datasets() {
        // NonFiniteData is defense-in-depth only: `Dataset::push`
        // rejects NaN at insertion, but serde deserialization does not
        // go through `push`.
        let empty = Dataset::new(2);
        assert_eq!(
            validate("X", &empty, false),
            Err(FitError::EmptyDataset { learner: "X" })
        );
        let mut neg = Dataset::new(1);
        neg.push(&[1.0], -2.0);
        assert!(validate("X", &neg, false).is_ok());
        assert_eq!(
            validate("X", &neg, true),
            Err(FitError::NonPositiveTarget { learner: "X" })
        );
    }
}
