//! K-nearest-neighbour regression: z-scored features, K = 5, mean
//! aggregation — the `caret` configuration the paper evaluates.

use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;
use crate::error::{validate, FitError};
use crate::kdtree::KdTree;
use crate::scaling::StandardScaler;

/// KNN hyper-parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct KnnParams {
    /// Number of neighbours (the paper keeps caret's default K = 5).
    pub k: usize,
    /// Standardize features before distance computation (the paper scales
    /// inputs for KNN even though unscaled sometimes did marginally
    /// better, for general applicability).
    pub scale: bool,
}

impl Default for KnnParams {
    fn default() -> Self {
        KnnParams { k: 5, scale: true }
    }
}

/// A fitted KNN regressor.
#[derive(Debug)]
pub struct KnnModel {
    k: usize,
    scaler: Option<StandardScaler>,
    tree: KdTree,
}

impl KnnModel {
    /// Store (scaled) training points in a k-d tree.
    ///
    /// Panics on degenerate datasets; see [`KnnModel::try_fit`] for the
    /// fallible variant used on partial benchmark grids.
    pub fn fit(data: &Dataset, params: &KnnParams) -> KnnModel {
        Self::try_fit(data, params).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible fit: an empty or non-finite dataset is a [`FitError`],
    /// not a panic. Fewer rows than K is fine — queries then average
    /// over all available rows.
    pub fn try_fit(data: &Dataset, params: &KnnParams) -> Result<KnnModel, FitError> {
        validate("KNN", data, false)?;
        let scaler = params.scale.then(|| StandardScaler::fit(data));
        let rows: Vec<(Vec<f64>, f64)> = data
            .iter()
            .map(|(x, y)| {
                let x = match &scaler {
                    Some(s) => s.transform(x),
                    None => x.to_vec(),
                };
                (x, y)
            })
            .collect();
        Ok(KnnModel { k: params.k.max(1), scaler, tree: KdTree::build(rows) })
    }

    /// Mean target of the K nearest training points.
    pub fn predict(&self, x: &[f64]) -> f64 {
        let q = match &self.scaler {
            Some(s) => s.transform(x),
            None => x.to_vec(),
        };
        let nn = self.tree.nearest(&q, self.k);
        nn.iter().map(|(_, y)| y).sum::<f64>() / nn.len() as f64
    }
}

impl crate::persist::Persist for KnnModel {
    fn encode(&self, w: &mut crate::persist::ByteWriter) {
        w.put_len(self.k);
        crate::persist::put_opt(w, &self.scaler);
        self.tree.encode(w);
    }

    fn decode(
        r: &mut crate::persist::ByteReader<'_>,
    ) -> Result<KnnModel, crate::persist::CodecError> {
        let k = r.get_len(0)?;
        if k == 0 {
            return Err(crate::persist::CodecError::invalid("KNN k must be ≥ 1"));
        }
        let scaler: Option<StandardScaler> = crate::persist::get_opt(r)?;
        let tree = KdTree::decode(r)?;
        if let Some(s) = &scaler {
            if s.dims() != tree.dims() {
                return Err(crate::persist::CodecError::invalid(format!(
                    "KNN scaler has {} dim(s), kd-tree has {}",
                    s.dims(),
                    tree.dims()
                )));
            }
        }
        Ok(KnnModel { k, scaler, tree })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolates_a_smooth_surface() {
        let mut d = Dataset::new(2);
        for i in 0..20 {
            for j in 0..20 {
                let (x, y) = (i as f64, j as f64);
                d.push(&[x, y], 2.0 * x + 3.0 * y);
            }
        }
        let m = KnnModel::fit(&d, &KnnParams::default());
        let p = m.predict(&[10.2, 5.1]);
        assert!((p - (2.0 * 10.2 + 3.0 * 5.1)).abs() < 3.0, "got {p}");
    }

    #[test]
    fn k1_returns_exact_neighbor() {
        let mut d = Dataset::new(1);
        d.push(&[0.0], 10.0);
        d.push(&[1.0], 20.0);
        d.push(&[2.0], 30.0);
        let m = KnnModel::fit(&d, &KnnParams { k: 1, scale: false });
        assert_eq!(m.predict(&[0.1]), 10.0);
        assert_eq!(m.predict(&[1.9]), 30.0);
    }

    #[test]
    fn scaling_changes_the_metric() {
        // Feature 1 has a huge magnitude; unscaled it dominates distance.
        let mut d = Dataset::new(2);
        d.push(&[0.0, 0.0], 1.0);
        d.push(&[1.0, 1_000_000.0], 2.0);
        d.push(&[2.0, 0.0], 3.0);
        let unscaled = KnnModel::fit(&d, &KnnParams { k: 1, scale: false });
        let scaled = KnnModel::fit(&d, &KnnParams { k: 1, scale: true });
        // Query near row 1 in feature 0, but with feature 1 = 0.
        let q = [1.0, 0.0];
        // Unscaled: row 1 is a million away in dim 1 → picks row 0 or 2.
        assert_ne!(unscaled.predict(&q), 2.0);
        // Scaled: dim 1 is one σ away; dim-0 distance dominates ties —
        // prediction is one of the near rows either way, just asserting
        // both paths work and differ in metric is enough here.
        let _ = scaled.predict(&q);
    }

    #[test]
    fn k_exceeding_n_uses_all_points() {
        let mut d = Dataset::new(1);
        d.push(&[0.0], 1.0);
        d.push(&[1.0], 3.0);
        let m = KnnModel::fit(&d, &KnnParams { k: 10, scale: false });
        assert!((m.predict(&[0.5]) - 2.0).abs() < 1e-12);
    }
}
