//! Row-major feature/target storage shared by all learners.

use serde::{Deserialize, Serialize};

/// A regression dataset: `n` rows of `nfeat` features plus one target
/// each, stored row-major in flat vectors.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Dataset {
    nfeat: usize,
    x: Vec<f64>,
    y: Vec<f64>,
}

impl Dataset {
    /// Create an empty dataset with `nfeat` features per row.
    pub fn new(nfeat: usize) -> Self {
        assert!(nfeat > 0, "dataset needs at least one feature");
        Dataset { nfeat, x: Vec::new(), y: Vec::new() }
    }

    /// Append one row.
    ///
    /// # Panics
    /// Panics if `features.len() != nfeat` or any value is non-finite —
    /// learners assume clean inputs.
    pub fn push(&mut self, features: &[f64], target: f64) {
        assert_eq!(features.len(), self.nfeat, "feature arity mismatch");
        assert!(
            features.iter().all(|v| v.is_finite()) && target.is_finite(),
            "non-finite value in dataset row"
        );
        self.x.extend_from_slice(features);
        self.y.push(target);
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// Whether the dataset has no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Features per row.
    #[inline]
    pub fn nfeat(&self) -> usize {
        self.nfeat
    }

    /// Feature row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.x[i * self.nfeat..(i + 1) * self.nfeat]
    }

    /// All targets.
    #[inline]
    pub fn targets(&self) -> &[f64] {
        &self.y
    }

    /// Feature `f` of row `i`.
    #[inline]
    pub fn at(&self, i: usize, f: usize) -> f64 {
        self.x[i * self.nfeat + f]
    }

    /// Column `f` gathered into a fresh vector.
    pub fn column(&self, f: usize) -> Vec<f64> {
        (0..self.len()).map(|i| self.at(i, f)).collect()
    }

    /// Subset by row indices (bootstrap/CV helper).
    pub fn subset(&self, idx: &[usize]) -> Dataset {
        let mut d = Dataset::new(self.nfeat);
        for &i in idx {
            d.push(self.row(i), self.y[i]);
        }
        d
    }

    /// Iterate `(features, target)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[f64], f64)> {
        (0..self.len()).map(|i| (self.row(i), self.y[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_access() {
        let mut d = Dataset::new(2);
        d.push(&[1.0, 2.0], 10.0);
        d.push(&[3.0, 4.0], 20.0);
        assert_eq!(d.len(), 2);
        assert_eq!(d.row(1), &[3.0, 4.0]);
        assert_eq!(d.at(0, 1), 2.0);
        assert_eq!(d.column(0), vec![1.0, 3.0]);
        assert_eq!(d.targets(), &[10.0, 20.0]);
    }

    #[test]
    fn subset_selects_rows() {
        let mut d = Dataset::new(1);
        for i in 0..5 {
            d.push(&[i as f64], i as f64 * 10.0);
        }
        let s = d.subset(&[4, 0, 4]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.targets(), &[40.0, 0.0, 40.0]);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut d = Dataset::new(2);
        d.push(&[1.0], 0.0);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_panics() {
        let mut d = Dataset::new(1);
        d.push(&[f64::NAN], 0.0);
    }
}
