//! Versioned binary persistence for fitted models.
//!
//! The format is deliberately hand-rolled (the workspace's serde is a
//! no-op shim): little-endian scalars, `u64` length prefixes on every
//! variable-length field, and a fixed frame around each artifact —
//!
//! ```text
//! +---------+-----------+--------+----------------+-----------------+----------+
//! | "MPCP"  | version   | kind   | payload_len    |     payload     | checksum |
//! | 4 bytes | u32 LE    | u8     | u64 LE         | payload_len B   | u64 LE   |
//! +---------+-----------+--------+----------------+-----------------+----------+
//! ```
//!
//! The checksum is FNV-1a 64 over the payload only, so header
//! corruption and payload corruption are distinguishable: a flipped
//! magic byte is [`CodecError::BadMagic`], a bumped version is
//! [`CodecError::UnknownVersion`] (detected *before* any payload is
//! touched, which is what makes forward-compat refusals cheap and
//! safe), and a flipped payload byte is [`CodecError::ChecksumMismatch`].
//! Truncation anywhere is [`CodecError::Truncated`]. Decoding never
//! panics; structural invariants the in-memory types rely on (tree
//! child indices, basis sizes, column counts) are re-validated by each
//! model's [`Persist::decode`] and reported as [`CodecError::Invalid`].
//!
//! Floats round-trip through [`f64::to_bits`]/[`f64::from_bits`], so a
//! decoded model reproduces its in-memory predictions bit-identically
//! (asserted by the differential round-trip suite).

use std::fmt;

/// Leading magic bytes of every artifact.
pub const MAGIC: [u8; 4] = *b"MPCP";

/// Current (and only) format version.
pub const FORMAT_VERSION: u32 = 1;

/// Artifact kind tag: a single fitted [`crate::Model`].
pub const KIND_MODEL: u8 = 1;

/// Artifact kind tag: a whole selector bundle (written by `mpcp-core`).
pub const KIND_SELECTOR: u8 = 2;

/// Frame kind tag: one request message on the `mpcp served` wire.
pub const KIND_NET_REQUEST: u8 = 3;

/// Frame kind tag: one response message on the `mpcp served` wire.
pub const KIND_NET_RESPONSE: u8 = 4;

/// Frame kind tag: the header frame of a campaign results store.
pub const KIND_CAMPAIGN_HEADER: u8 = 5;

/// Frame kind tag: one columnar result chunk in a campaign store.
pub const KIND_CAMPAIGN_CHUNK: u8 = 6;

/// Fixed byte length of the header that precedes every payload:
/// magic (4) + version `u32` (4) + kind `u8` (1) + payload length
/// `u64` (8) + FNV-1a checksum `u64` (8).
pub const FRAME_HEADER_LEN: usize = 25;

/// Why a byte stream could not be decoded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The stream ended before a field could be read in full.
    Truncated {
        /// Byte offset at which the read was attempted.
        offset: usize,
        /// Bytes the field needed.
        needed: usize,
    },
    /// The leading magic bytes are not `b"MPCP"`.
    BadMagic,
    /// The format version is newer (or older) than this build supports.
    UnknownVersion {
        /// Version found in the header.
        found: u32,
        /// Version this build writes and reads.
        supported: u32,
    },
    /// The artifact-kind byte does not match what the caller expected
    /// (e.g. a bare model file passed where a selector was required).
    WrongKind {
        /// Kind the caller asked to decode.
        expected: u8,
        /// Kind found in the header.
        found: u8,
    },
    /// The payload checksum does not match its header.
    ChecksumMismatch {
        /// Checksum recorded in the frame.
        expected: u64,
        /// Checksum of the payload as read.
        found: u64,
    },
    /// The bytes decode structurally but violate a model invariant
    /// (out-of-range child index, inconsistent column counts, …).
    Invalid {
        /// Human-readable description of the violated invariant.
        what: String,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { offset, needed } => {
                write!(f, "truncated artifact: needed {needed} byte(s) at offset {offset}")
            }
            CodecError::BadMagic => write!(f, "not an MPCP artifact (bad magic bytes)"),
            CodecError::UnknownVersion { found, supported } => {
                write!(f, "unknown format version {found} (this build supports {supported})")
            }
            CodecError::WrongKind { expected, found } => {
                write!(f, "wrong artifact kind {found} (expected {expected})")
            }
            CodecError::ChecksumMismatch { expected, found } => write!(
                f,
                "payload checksum mismatch: header says {expected:#018x}, payload hashes to {found:#018x}"
            ),
            CodecError::Invalid { what } => write!(f, "invalid artifact payload: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl CodecError {
    /// Shorthand for an [`CodecError::Invalid`] with a formatted reason.
    pub fn invalid(what: impl Into<String>) -> CodecError {
        CodecError::Invalid { what: what.into() }
    }
}

/// FNV-1a 64-bit hash of `bytes` — small, dependency-free, and plenty
/// for corruption detection (this is an integrity check, not a MAC).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Growable little-endian byte sink used by [`Persist::encode`].
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// Consume the writer, yielding the written bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` widened to `u64` (never lossy).
    pub fn put_len(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Append an `f64` via its IEEE-754 bit pattern (exact round-trip,
    /// NaN payloads included).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_len(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Append a length-prefixed `f64` slice.
    pub fn put_f64s(&mut self, vs: &[f64]) {
        self.put_len(vs.len());
        for &v in vs {
            self.put_f64(v);
        }
    }

    /// Append a length-prefixed `u32` slice.
    pub fn put_u32s(&mut self, vs: &[u32]) {
        self.put_len(vs.len());
        for &v in vs {
            self.put_u32(v);
        }
    }

    /// Append a length-prefixed `u64` slice.
    pub fn put_u64s(&mut self, vs: &[u64]) {
        self.put_len(vs.len());
        for &v in vs {
            self.put_u64(v);
        }
    }

    /// Append a length-prefixed raw byte column.
    pub fn put_u8s(&mut self, vs: &[u8]) {
        self.put_len(vs.len());
        self.buf.extend_from_slice(vs);
    }
}

/// Bounded little-endian cursor used by [`Persist::decode`]. Every read
/// is checked: running past the end yields [`CodecError::Truncated`],
/// never a panic.
#[derive(Debug)]
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `bytes`, positioned at the start.
    pub fn new(bytes: &'a [u8]) -> ByteReader<'a> {
        ByteReader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Take the next `n` bytes.
    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated { offset: self.pos, needed: n });
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Read a `u64` length prefix and narrow it to `usize`, additionally
    /// capping it by the bytes actually remaining (`elem_size` bytes per
    /// element) so corrupt lengths cannot trigger huge allocations.
    pub fn get_len(&mut self, elem_size: usize) -> Result<usize, CodecError> {
        let raw = self.get_u64()?;
        let len = usize::try_from(raw)
            .map_err(|_| CodecError::invalid(format!("length {raw} exceeds address space")))?;
        let bytes_needed = len
            .checked_mul(elem_size.max(1))
            .ok_or_else(|| CodecError::invalid(format!("length {raw} overflows")))?;
        if elem_size > 0 && self.remaining() < bytes_needed {
            return Err(CodecError::Truncated { offset: self.pos, needed: bytes_needed });
        }
        Ok(len)
    }

    /// Read an `f64` from its bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a bool; any byte other than 0/1 is invalid.
    pub fn get_bool(&mut self) -> Result<bool, CodecError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(CodecError::invalid(format!("bool byte {b}"))),
        }
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_string(&mut self) -> Result<String, CodecError> {
        let len = self.get_len(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CodecError::invalid("string is not valid UTF-8"))
    }

    /// Read a length-prefixed `f64` vector.
    pub fn get_f64s(&mut self) -> Result<Vec<f64>, CodecError> {
        let len = self.get_len(8)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.get_f64()?);
        }
        Ok(out)
    }

    /// Read a length-prefixed `u32` vector.
    pub fn get_u32s(&mut self) -> Result<Vec<u32>, CodecError> {
        let len = self.get_len(4)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.get_u32()?);
        }
        Ok(out)
    }

    /// Read a length-prefixed `u64` vector.
    pub fn get_u64s(&mut self) -> Result<Vec<u64>, CodecError> {
        let len = self.get_len(8)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.get_u64()?);
        }
        Ok(out)
    }

    /// Read a length-prefixed raw byte column.
    pub fn get_u8s(&mut self) -> Result<Vec<u8>, CodecError> {
        let len = self.get_len(1)?;
        Ok(self.take(len)?.to_vec())
    }
}

/// Binary persistence for a fitted model component.
///
/// `encode` writes the component's full state; `decode` reads it back
/// and re-validates every structural invariant the in-memory type (or
/// its unsafe batch kernels) rely on. `decode(encode(x))` must
/// reproduce `x`'s predictions bit-identically.
pub trait Persist: Sized {
    /// Append this value's encoding to `w`.
    fn encode(&self, w: &mut ByteWriter);
    /// Decode a value previously written by [`Persist::encode`].
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError>;
}

/// Encode `value` inside a checksummed frame of the given `kind`.
pub fn encode_framed<T: Persist>(kind: u8, value: &T) -> Vec<u8> {
    let mut payload = ByteWriter::new();
    value.encode(&mut payload);
    let payload = payload.into_bytes();
    let mut out = Vec::with_capacity(payload.len() + 25);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.push(kind);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Validate a frame of the given `kind` and return its payload slice.
///
/// Header fields are checked in order — magic, version, kind, length,
/// checksum — so each class of corruption maps to its own typed error.
pub fn unframe(bytes: &[u8], kind: u8) -> Result<&[u8], CodecError> {
    let mut r = ByteReader::new(bytes);
    let magic = r.take(4)?;
    if magic != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = r.get_u32()?;
    if version != FORMAT_VERSION {
        return Err(CodecError::UnknownVersion { found: version, supported: FORMAT_VERSION });
    }
    let found_kind = r.get_u8()?;
    if found_kind != kind {
        return Err(CodecError::WrongKind { expected: kind, found: found_kind });
    }
    let len = r.get_len(1)?;
    let expected = r.get_u64()?;
    let payload = r.take(len)?;
    if r.remaining() != 0 {
        return Err(CodecError::invalid(format!("{} trailing byte(s) after payload", r.remaining())));
    }
    let found = fnv1a64(payload);
    if found != expected {
        return Err(CodecError::ChecksumMismatch { expected, found });
    }
    Ok(payload)
}

/// Validated header of one frame, as read off a byte stream by
/// [`read_frame_header`]. Tells a streaming reader how many payload
/// bytes to pull before handing them to [`check_frame_payload`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameHeader {
    /// Kind byte found in the header (already matched by the reader).
    pub kind: u8,
    /// Number of payload bytes that follow the header.
    pub payload_len: usize,
    /// FNV-1a 64 checksum the payload must hash to.
    pub checksum: u64,
}

/// Parse and validate exactly [`FRAME_HEADER_LEN`] header bytes without
/// touching the payload. This is the streaming counterpart of
/// [`unframe`]: a socket reader pulls the fixed-size header first, asks
/// this function how long the payload is, then reads that many bytes
/// and verifies them with [`check_frame_payload`]. Header fields are
/// checked in the same order as [`unframe`] — magic, version, kind — so
/// each corruption class maps to the same typed error.
pub fn read_frame_header(header: &[u8; FRAME_HEADER_LEN], kind: u8) -> Result<FrameHeader, CodecError> {
    let mut r = ByteReader::new(header);
    let magic = r.take(4)?;
    if magic != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = r.get_u32()?;
    if version != FORMAT_VERSION {
        return Err(CodecError::UnknownVersion { found: version, supported: FORMAT_VERSION });
    }
    let found_kind = r.get_u8()?;
    if found_kind != kind {
        return Err(CodecError::WrongKind { expected: kind, found: found_kind });
    }
    let raw_len = r.get_u64()?;
    let payload_len = usize::try_from(raw_len)
        .map_err(|_| CodecError::invalid(format!("payload length {raw_len} exceeds address space")))?;
    let checksum = r.get_u64()?;
    Ok(FrameHeader { kind: found_kind, payload_len, checksum })
}

/// Verify `payload` against a header returned by [`read_frame_header`].
pub fn check_frame_payload(header: &FrameHeader, payload: &[u8]) -> Result<(), CodecError> {
    if payload.len() != header.payload_len {
        return Err(CodecError::Truncated { offset: payload.len(), needed: header.payload_len });
    }
    let found = fnv1a64(payload);
    if found != header.checksum {
        return Err(CodecError::ChecksumMismatch { expected: header.checksum, found });
    }
    Ok(())
}

/// Append a framed encoding of `value` to an existing byte stream.
///
/// Frames are self-delimiting (the header carries the payload length),
/// so concatenating frames yields a valid multi-frame stream that
/// [`FrameScanner`] can walk — this is the append primitive of the
/// campaign store's checkpoint files.
pub fn append_framed<T: Persist>(out: &mut Vec<u8>, kind: u8, value: &T) {
    out.extend_from_slice(&encode_framed(kind, value));
}

/// Streaming cursor over a concatenation of checksummed frames, as
/// written by [`append_framed`] — the read side of an append-only store
/// file.
///
/// [`FrameScanner::next_frame`] distinguishes three cases a resuming
/// reader must treat differently:
///
/// * a complete valid frame — returned as its payload slice;
/// * a clean end of stream (scanner exactly at the end) — `Ok(None)`;
/// * anything else — a typed [`CodecError`]. In particular, a tail that
///   holds *part* of a frame (a crash mid-append) is
///   [`CodecError::Truncated`], and [`FrameScanner::offset`] still
///   points at the start of that torn frame, which is exactly where a
///   recovering writer should truncate the file to.
#[derive(Debug)]
pub struct FrameScanner<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> FrameScanner<'a> {
    /// A scanner over `bytes`, positioned at the first frame.
    pub fn new(bytes: &'a [u8]) -> FrameScanner<'a> {
        FrameScanner { bytes, pos: 0 }
    }

    /// Byte offset of the next unread frame (= the end of the last
    /// successfully validated one).
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Read and validate the next frame, requiring kind `kind`.
    ///
    /// Returns the payload slice, `Ok(None)` at a clean end of stream,
    /// or a typed error (leaving [`FrameScanner::offset`] at the start
    /// of the bad frame).
    pub fn next_frame(&mut self, kind: u8) -> Result<Option<&'a [u8]>, CodecError> {
        let rest = &self.bytes[self.pos..];
        if rest.is_empty() {
            return Ok(None);
        }
        if rest.len() < FRAME_HEADER_LEN {
            return Err(CodecError::Truncated { offset: self.pos, needed: FRAME_HEADER_LEN });
        }
        let mut header = [0u8; FRAME_HEADER_LEN];
        header.copy_from_slice(&rest[..FRAME_HEADER_LEN]);
        let h = read_frame_header(&header, kind)?;
        let body = &rest[FRAME_HEADER_LEN..];
        if body.len() < h.payload_len {
            return Err(CodecError::Truncated {
                offset: self.pos + FRAME_HEADER_LEN,
                needed: h.payload_len,
            });
        }
        let payload = &body[..h.payload_len];
        check_frame_payload(&h, payload)?;
        self.pos += FRAME_HEADER_LEN + h.payload_len;
        Ok(Some(payload))
    }
}

/// Decode a framed value of the given `kind`, requiring the payload to
/// be consumed exactly.
pub fn decode_framed<T: Persist>(kind: u8, bytes: &[u8]) -> Result<T, CodecError> {
    let payload = unframe(bytes, kind)?;
    decode_payload(payload)
}

/// Decode a value from an already-validated payload slice (e.g. one
/// returned by [`FrameScanner::next_frame`]), requiring the payload to
/// be consumed exactly.
pub fn decode_payload<T: Persist>(payload: &[u8]) -> Result<T, CodecError> {
    let mut r = ByteReader::new(payload);
    let value = T::decode(&mut r)?;
    if r.remaining() != 0 {
        return Err(CodecError::invalid(format!(
            "{} undecoded byte(s) at end of payload",
            r.remaining()
        )));
    }
    Ok(value)
}

/// Encode an `Option<T>` as a presence byte plus the value.
pub fn put_opt<T: Persist>(w: &mut ByteWriter, v: &Option<T>) {
    match v {
        None => w.put_u8(0),
        Some(inner) => {
            w.put_u8(1);
            inner.encode(w);
        }
    }
}

/// Decode an `Option<T>` written by [`put_opt`].
pub fn get_opt<T: Persist>(r: &mut ByteReader<'_>) -> Result<Option<T>, CodecError> {
    match r.get_u8()? {
        0 => Ok(None),
        1 => Ok(Some(T::decode(r)?)),
        b => Err(CodecError::invalid(format!("option tag {b}"))),
    }
}

/// Encode a slice of `T` with a length prefix.
pub fn put_seq<T: Persist>(w: &mut ByteWriter, vs: &[T]) {
    w.put_len(vs.len());
    for v in vs {
        v.encode(w);
    }
}

/// Decode a vector written by [`put_seq`].
pub fn get_seq<T: Persist>(r: &mut ByteReader<'_>) -> Result<Vec<T>, CodecError> {
    // Elements are variable-size; 1 byte/element is the conservative
    // lower bound used for the allocation cap.
    let len = r.get_len(1)?;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(T::decode(r)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny component exercising every writer/reader primitive.
    #[derive(Debug, PartialEq)]
    struct Sample {
        a: u8,
        b: u32,
        c: u64,
        d: f64,
        e: bool,
        s: String,
        v: Vec<f64>,
        u: Vec<u32>,
        o: Option<Box<Sample>>,
    }

    impl Persist for Sample {
        fn encode(&self, w: &mut ByteWriter) {
            w.put_u8(self.a);
            w.put_u32(self.b);
            w.put_u64(self.c);
            w.put_f64(self.d);
            w.put_bool(self.e);
            w.put_str(&self.s);
            w.put_f64s(&self.v);
            w.put_u32s(&self.u);
            match &self.o {
                None => w.put_u8(0),
                Some(inner) => {
                    w.put_u8(1);
                    inner.encode(w);
                }
            }
        }

        fn decode(r: &mut ByteReader<'_>) -> Result<Sample, CodecError> {
            Ok(Sample {
                a: r.get_u8()?,
                b: r.get_u32()?,
                c: r.get_u64()?,
                d: r.get_f64()?,
                e: r.get_bool()?,
                s: r.get_string()?,
                v: r.get_f64s()?,
                u: r.get_u32s()?,
                o: match r.get_u8()? {
                    0 => None,
                    1 => Some(Box::new(Sample::decode(r)?)),
                    b => return Err(CodecError::invalid(format!("option tag {b}"))),
                },
            })
        }
    }

    fn sample() -> Sample {
        Sample {
            a: 7,
            b: 0xDEAD_BEEF,
            c: u64::MAX - 3,
            d: -0.1234e-200,
            e: true,
            s: "αβγ selector".to_string(),
            v: vec![f64::INFINITY, f64::NEG_INFINITY, 0.0, -0.0, 1.5e300],
            u: vec![0, 1, u32::MAX],
            o: Some(Box::new(Sample {
                a: 0,
                b: 0,
                c: 0,
                d: f64::from_bits(0x7ff8_0000_0000_1234), // NaN with payload
                e: false,
                s: String::new(),
                v: vec![],
                u: vec![],
                o: None,
            })),
        }
    }

    #[test]
    fn primitives_round_trip_bitwise() {
        let s = sample();
        let bytes = encode_framed(KIND_MODEL, &s);
        let back: Sample = decode_framed(KIND_MODEL, &bytes).unwrap();
        // NaN payloads defeat PartialEq; compare via bits where needed.
        assert_eq!(back.a, s.a);
        assert_eq!(back.b, s.b);
        assert_eq!(back.c, s.c);
        assert_eq!(back.d.to_bits(), s.d.to_bits());
        assert_eq!(back.s, s.s);
        assert_eq!(
            back.v.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            s.v.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(back.u, s.u);
        let (bo, so) = (back.o.unwrap(), s.o.unwrap());
        assert_eq!(bo.d.to_bits(), so.d.to_bits());
    }

    #[test]
    fn truncation_at_every_byte_is_a_typed_error() {
        let bytes = encode_framed(KIND_MODEL, &sample());
        for cut in 0..bytes.len() {
            let err = decode_framed::<Sample>(KIND_MODEL, &bytes[..cut]).unwrap_err();
            match err {
                CodecError::Truncated { .. }
                | CodecError::BadMagic
                | CodecError::UnknownVersion { .. }
                | CodecError::WrongKind { .. }
                | CodecError::ChecksumMismatch { .. }
                | CodecError::Invalid { .. } => {}
            }
        }
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let bytes = encode_framed(KIND_MODEL, &sample());
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x5A;
            assert!(
                decode_framed::<Sample>(KIND_MODEL, &corrupt).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn header_corruption_maps_to_its_own_error() {
        let bytes = encode_framed(KIND_MODEL, &sample());
        let mut m = bytes.clone();
        m[0] = b'X';
        assert_eq!(decode_framed::<Sample>(KIND_MODEL, &m).unwrap_err(), CodecError::BadMagic);
        let mut v = bytes.clone();
        v[4] = 0xFE; // bump version field
        assert_eq!(
            decode_framed::<Sample>(KIND_MODEL, &v).unwrap_err(),
            CodecError::UnknownVersion { found: 0xFE, supported: FORMAT_VERSION }
        );
        let mut k = bytes.clone();
        k[8] = KIND_SELECTOR;
        assert_eq!(
            decode_framed::<Sample>(KIND_MODEL, &k).unwrap_err(),
            CodecError::WrongKind { expected: KIND_MODEL, found: KIND_SELECTOR }
        );
        let mut p = bytes.clone();
        let last = p.len() - 1;
        p[last] ^= 1; // payload bit
        assert!(matches!(
            decode_framed::<Sample>(KIND_MODEL, &p).unwrap_err(),
            CodecError::ChecksumMismatch { .. }
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_framed(KIND_MODEL, &sample());
        bytes.push(0);
        assert!(matches!(
            decode_framed::<Sample>(KIND_MODEL, &bytes).unwrap_err(),
            CodecError::Invalid { .. }
        ));
    }

    #[test]
    fn corrupt_length_prefix_cannot_allocate_unbounded() {
        // A huge length prefix inside the payload must fail bounded (the
        // reader caps requested lengths by remaining bytes) rather than
        // attempt a ~u64::MAX allocation. Bypass the checksum by hashing
        // the corrupted payload ourselves.
        let mut payload = ByteWriter::new();
        payload.put_u64(u64::MAX / 2); // absurd f64 vector length
        let payload = payload.into_bytes();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        bytes.push(KIND_MODEL);
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        let payload_slice = unframe(&bytes, KIND_MODEL).unwrap();
        let mut r = ByteReader::new(payload_slice);
        assert!(matches!(
            r.get_f64s(),
            Err(CodecError::Truncated { .. } | CodecError::Invalid { .. })
        ));
    }

    #[test]
    fn fnv_vectors() {
        // Reference values for the empty string and "a" (FNV-1a 64).
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn streaming_header_agrees_with_unframe() {
        let bytes = encode_framed(KIND_NET_REQUEST, &sample());
        let mut header = [0u8; FRAME_HEADER_LEN];
        header.copy_from_slice(&bytes[..FRAME_HEADER_LEN]);
        let h = read_frame_header(&header, KIND_NET_REQUEST).unwrap();
        assert_eq!(h.kind, KIND_NET_REQUEST);
        assert_eq!(h.payload_len, bytes.len() - FRAME_HEADER_LEN);
        let payload = &bytes[FRAME_HEADER_LEN..];
        check_frame_payload(&h, payload).unwrap();
        assert_eq!(h.checksum, fnv1a64(payload));
    }

    #[test]
    fn streaming_header_corruption_maps_to_typed_errors() {
        let bytes = encode_framed(KIND_NET_RESPONSE, &sample());
        let mut header = [0u8; FRAME_HEADER_LEN];
        header.copy_from_slice(&bytes[..FRAME_HEADER_LEN]);

        let mut m = header;
        m[0] = b'X';
        assert_eq!(read_frame_header(&m, KIND_NET_RESPONSE).unwrap_err(), CodecError::BadMagic);

        let mut v = header;
        v[4] = 0xFE;
        assert_eq!(
            read_frame_header(&v, KIND_NET_RESPONSE).unwrap_err(),
            CodecError::UnknownVersion { found: 0xFE, supported: FORMAT_VERSION }
        );

        // A response frame where a request was expected is WrongKind —
        // this is how a served connection rejects a confused peer.
        assert_eq!(
            read_frame_header(&header, KIND_NET_REQUEST).unwrap_err(),
            CodecError::WrongKind { expected: KIND_NET_REQUEST, found: KIND_NET_RESPONSE }
        );

        let h = read_frame_header(&header, KIND_NET_RESPONSE).unwrap();
        let mut payload = bytes[FRAME_HEADER_LEN..].to_vec();
        payload[0] ^= 0x5A;
        assert!(matches!(
            check_frame_payload(&h, &payload),
            Err(CodecError::ChecksumMismatch { .. })
        ));
        assert!(matches!(
            check_frame_payload(&h, &payload[..payload.len() - 1]),
            Err(CodecError::Truncated { .. })
        ));
    }

    /// A minimal Persist value for frame-stream tests.
    #[derive(Debug, PartialEq)]
    struct Blob {
        tag: u64,
        data: Vec<u8>,
        wide: Vec<u64>,
    }

    impl Persist for Blob {
        fn encode(&self, w: &mut ByteWriter) {
            w.put_u64(self.tag);
            w.put_u8s(&self.data);
            w.put_u64s(&self.wide);
        }

        fn decode(r: &mut ByteReader<'_>) -> Result<Blob, CodecError> {
            Ok(Blob { tag: r.get_u64()?, data: r.get_u8s()?, wide: r.get_u64s()? })
        }
    }

    fn blob(i: u64) -> Blob {
        Blob {
            tag: i,
            data: (0..=(i as u8).wrapping_mul(3)).collect(),
            wide: vec![u64::MAX - i, 0, i << 40],
        }
    }

    #[test]
    fn u64_and_u8_columns_round_trip() {
        let b = blob(5);
        let bytes = encode_framed(KIND_CAMPAIGN_CHUNK, &b);
        let back: Blob = decode_framed(KIND_CAMPAIGN_CHUNK, &bytes).unwrap();
        assert_eq!(back, b);
    }

    #[test]
    fn frame_scanner_walks_an_appended_stream() {
        let mut stream = Vec::new();
        for i in 0..4 {
            append_framed(&mut stream, KIND_CAMPAIGN_CHUNK, &blob(i));
        }
        let mut scan = FrameScanner::new(&stream);
        for i in 0..4 {
            let payload = scan.next_frame(KIND_CAMPAIGN_CHUNK).unwrap().unwrap();
            assert_eq!(decode_payload::<Blob>(payload).unwrap(), blob(i));
        }
        assert_eq!(scan.next_frame(KIND_CAMPAIGN_CHUNK).unwrap(), None);
        assert_eq!(scan.offset(), stream.len());
    }

    #[test]
    fn frame_scanner_truncation_points_at_the_torn_frame() {
        let mut stream = Vec::new();
        append_framed(&mut stream, KIND_CAMPAIGN_CHUNK, &blob(1));
        let first_end = stream.len();
        append_framed(&mut stream, KIND_CAMPAIGN_CHUNK, &blob(2));
        // Cut at exactly the frame boundary: that is a clean EOF.
        let mut scan = FrameScanner::new(&stream[..first_end]);
        assert!(scan.next_frame(KIND_CAMPAIGN_CHUNK).unwrap().is_some());
        assert_eq!(scan.next_frame(KIND_CAMPAIGN_CHUNK).unwrap(), None);
        // Cut the second frame at every interior byte: the scanner must
        // yield the first frame, then a typed error with offset() still
        // at the start of the torn frame (the recovery truncation point).
        for cut in first_end + 1..stream.len() {
            let mut scan = FrameScanner::new(&stream[..cut]);
            assert!(scan.next_frame(KIND_CAMPAIGN_CHUNK).unwrap().is_some());
            let err = scan.next_frame(KIND_CAMPAIGN_CHUNK).unwrap_err();
            assert!(
                matches!(err, CodecError::Truncated { .. } | CodecError::ChecksumMismatch { .. }),
                "cut at {cut}: {err}"
            );
            assert_eq!(scan.offset(), first_end, "cut at {cut}");
        }
    }

    #[test]
    fn frame_scanner_rejects_wrong_kind_and_corruption() {
        let mut stream = Vec::new();
        append_framed(&mut stream, KIND_CAMPAIGN_HEADER, &blob(1));
        let mut scan = FrameScanner::new(&stream);
        assert_eq!(
            scan.next_frame(KIND_CAMPAIGN_CHUNK).unwrap_err(),
            CodecError::WrongKind { expected: KIND_CAMPAIGN_CHUNK, found: KIND_CAMPAIGN_HEADER }
        );
        // A flipped payload byte is a checksum mismatch, not a panic.
        let last = stream.len() - 1;
        stream[last] ^= 0x5A;
        let mut scan = FrameScanner::new(&stream);
        assert!(matches!(
            scan.next_frame(KIND_CAMPAIGN_HEADER).unwrap_err(),
            CodecError::ChecksumMismatch { .. }
        ));
        assert_eq!(scan.offset(), 0);
    }

    #[test]
    fn display_messages_name_the_failure() {
        assert!(format!("{}", CodecError::BadMagic).contains("magic"));
        let e = CodecError::UnknownVersion { found: 9, supported: 1 };
        assert!(format!("{e}").contains("version 9"));
        let e = CodecError::Truncated { offset: 3, needed: 8 };
        assert!(format!("{e}").contains("offset 3"));
    }
}
