//! Regression error metrics (the paper monitors MAE/RMSE while training;
//! its headline metric — speed-up over the default selection — lives in
//! `mpcp-core`).

/// Mean absolute error.
pub fn mae(truth: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(truth.len(), pred.len());
    if truth.is_empty() {
        return 0.0;
    }
    truth.iter().zip(pred).map(|(t, p)| (t - p).abs()).sum::<f64>() / truth.len() as f64
}

/// Root mean squared error.
pub fn rmse(truth: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(truth.len(), pred.len());
    if truth.is_empty() {
        return 0.0;
    }
    (truth.iter().zip(pred).map(|(t, p)| (t - p) * (t - p)).sum::<f64>() / truth.len() as f64)
        .sqrt()
}

/// Mean absolute percentage error (truth values of zero are skipped).
pub fn mape(truth: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(truth.len(), pred.len());
    let mut s = 0.0;
    let mut n = 0usize;
    for (t, p) in truth.iter().zip(pred) {
        if t.abs() > 1e-30 {
            s += ((t - p) / t).abs();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        s / n as f64
    }
}

/// Mean unit Tweedie deviance with variance power `p ∈ (1, 2)` — the
/// loss the boosted models optimize, so the right yardstick for
/// comparing GBT training configurations. Truth and predictions must be
/// strictly positive.
pub fn tweedie_deviance(truth: &[f64], pred: &[f64], p: f64) -> f64 {
    assert_eq!(truth.len(), pred.len());
    assert!(p > 1.0 && p < 2.0, "variance power must lie in (1, 2)");
    if truth.is_empty() {
        return 0.0;
    }
    let dev: f64 = truth
        .iter()
        .zip(pred)
        .map(|(&y, &mu)| {
            assert!(y > 0.0 && mu > 0.0, "Tweedie deviance needs positive values");
            2.0 * (y.powf(2.0 - p) / ((1.0 - p) * (2.0 - p)) - y * mu.powf(1.0 - p) / (1.0 - p)
                + mu.powf(2.0 - p) / (2.0 - p))
        })
        .sum();
    dev / truth.len() as f64
}

/// Coefficient of determination R².
pub fn r2(truth: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(truth.len(), pred.len());
    if truth.is_empty() {
        return 0.0;
    }
    let mean: f64 = truth.iter().sum::<f64>() / truth.len() as f64;
    let ss_tot: f64 = truth.iter().map(|t| (t - mean) * (t - mean)).sum();
    let ss_res: f64 = truth.iter().zip(pred).map(|(t, p)| (t - p) * (t - p)).sum();
    if ss_tot <= 0.0 {
        if ss_res <= 1e-30 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction() {
        let t = [1.0, 2.0, 3.0];
        assert_eq!(mae(&t, &t), 0.0);
        assert_eq!(rmse(&t, &t), 0.0);
        assert_eq!(mape(&t, &t), 0.0);
        assert_eq!(r2(&t, &t), 1.0);
    }

    #[test]
    fn known_values() {
        let t = [0.0, 2.0];
        let p = [1.0, 1.0];
        assert!((mae(&t, &p) - 1.0).abs() < 1e-12);
        assert!((rmse(&t, &p) - 1.0).abs() < 1e-12);
        // mape skips the zero truth: |2-1|/2 = 0.5
        assert!((mape(&t, &p) - 0.5).abs() < 1e-12);
        // r2: mean=1, ss_tot=2, ss_res=2 → 0.
        assert!((r2(&t, &p) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(mae(&[], &[]), 0.0);
        assert_eq!(rmse(&[], &[]), 0.0);
        assert_eq!(r2(&[], &[]), 0.0);
        assert_eq!(tweedie_deviance(&[], &[], 1.5), 0.0);
    }

    #[test]
    fn tweedie_deviance_is_zero_at_truth_and_grows_off_it() {
        let t = [1.0, 5.0, 20.0];
        assert!(tweedie_deviance(&t, &t, 1.5).abs() < 1e-12);
        let off = [2.0, 4.0, 30.0];
        assert!(tweedie_deviance(&t, &off, 1.5) > 0.0);
        // Deviance increases as predictions drift further away.
        let far = [4.0, 2.0, 60.0];
        assert!(tweedie_deviance(&t, &far, 1.5) > tweedie_deviance(&t, &off, 1.5));
    }
}
