//! Differential round-trip tests for the model codec: every learner's
//! fitted model must survive encode → decode with **bit-identical**
//! predictions (compared through `f64::to_bits`, so `-0.0` vs `0.0` or
//! a ULP of drift fails), and no corruption of the byte stream may
//! cause anything but the right typed [`CodecError`].

use proptest::prelude::*;

use mpcp_ml::persist::{
    decode_framed, encode_framed, CodecError, FORMAT_VERSION, KIND_MODEL,
};
use mpcp_ml::{Dataset, Learner, Model};

/// A deterministic benchmark-shaped training set: 4 features
/// (log2 msize, nodes, ppn, procs), runtime-like positive targets with
/// a nonlinear crossover so trees actually split.
fn training_data() -> Dataset {
    let mut d = Dataset::new(4);
    for mexp in 0..10u32 {
        for nodes in 2..8u32 {
            for ppn in [1u32, 2, 4] {
                let m = (1u64 << (2 * mexp)) as f64;
                let procs = (nodes * ppn) as f64;
                let latency = 5.0 + 0.7 * procs;
                let bw = m.log2().max(1.0) * (1.0 + 0.02 * procs);
                let cross = if m > 4096.0 { 40.0 * (procs).sqrt() } else { 0.0 };
                d.push(
                    &[(m + 1.0).log2(), nodes as f64, ppn as f64, procs],
                    latency + bw + cross,
                );
            }
        }
    }
    d
}

/// Held-out query grid, deliberately off the training lattice
/// (fractional log-sizes, unseen node counts).
fn heldout_grid() -> Vec<[f64; 4]> {
    let mut g = Vec::new();
    for i in 0..40 {
        let m = 1.5 + (i as f64) * 0.83;
        let nodes = 2.0 + (i % 9) as f64;
        let ppn = 1.0 + (i % 5) as f64;
        g.push([m, nodes, ppn, nodes * ppn]);
    }
    g
}

fn all_learners() -> Vec<Learner> {
    vec![
        Learner::knn(),
        Learner::gam(),
        Learner::xgboost(),
        Learner::forest(),
        Learner::linear(),
    ]
}

#[test]
fn every_learner_round_trips_bit_identically() {
    let data = training_data();
    let grid = heldout_grid();
    for learner in all_learners() {
        let model = learner.fit(&data);
        let bytes = encode_framed(KIND_MODEL, &model);
        let loaded: Model = decode_framed(KIND_MODEL, &bytes)
            .unwrap_or_else(|e| panic!("{}: decode failed: {e}", learner.name()));
        for x in &grid {
            let a = model.predict(x);
            let b = loaded.predict(x);
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{}: predict({x:?}) drifted: {a} vs {b}",
                learner.name()
            );
        }
        // The batched kernel goes through a different code path (flat
        // lockstep trees for GBT); it must agree bit-for-bit too.
        let xs: Vec<f64> = grid.iter().flatten().copied().collect();
        let a = model.predict_batch(&xs, 4);
        let b = loaded.predict_batch(&xs, 4);
        for (i, (pa, pb)) in a.iter().zip(&b).enumerate() {
            assert_eq!(
                pa.to_bits(),
                pb.to_bits(),
                "{}: predict_batch row {i} drifted",
                learner.name()
            );
        }
    }
}

#[test]
fn double_round_trip_is_byte_stable() {
    // encode(decode(encode(m))) == encode(m): the format has one
    // canonical serialization per model.
    let data = training_data();
    for learner in all_learners() {
        let model = learner.fit(&data);
        let bytes = encode_framed(KIND_MODEL, &model);
        let loaded: Model = decode_framed(KIND_MODEL, &bytes).expect("first decode");
        let bytes2 = encode_framed(KIND_MODEL, &loaded);
        assert_eq!(bytes, bytes2, "{}: re-encoding changed bytes", learner.name());
    }
}

#[test]
fn truncation_at_every_boundary_is_typed_for_every_learner() {
    let data = training_data();
    for learner in all_learners() {
        let model = learner.fit(&data);
        let bytes = encode_framed(KIND_MODEL, &model);
        for cut in 0..bytes.len() {
            match decode_framed::<Model>(KIND_MODEL, &bytes[..cut]) {
                Err(
                    CodecError::Truncated { .. }
                    | CodecError::BadMagic
                    | CodecError::Invalid { .. },
                ) => {}
                Err(e) => panic!("{}: cut at {cut}: unexpected error {e:?}", learner.name()),
                Ok(_) => panic!("{}: cut at {cut} decoded successfully", learner.name()),
            }
        }
    }
}

#[test]
fn version_bump_is_unknown_version() {
    let model = Learner::linear().fit(&training_data());
    let mut bytes = encode_framed(KIND_MODEL, &model);
    // Version field: little-endian u32 at offset 4.
    bytes[4..8].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    match decode_framed::<Model>(KIND_MODEL, &bytes) {
        Err(CodecError::UnknownVersion { found, supported }) => {
            assert_eq!(found, FORMAT_VERSION + 1);
            assert_eq!(supported, FORMAT_VERSION);
        }
        other => panic!("expected UnknownVersion, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random byte flips anywhere in a valid artifact: decode must
    /// return a typed error (the checksum or a header check catches
    /// it) and must never panic.
    #[test]
    fn random_byte_flips_never_panic_and_never_pass(
        flips in prop::collection::vec((0usize..4096, 1u32..256), 1..4),
        learner_idx in 0usize..5,
    ) {
        let model = all_learners()[learner_idx].fit(&training_data());
        let mut bytes = encode_framed(KIND_MODEL, &model);
        let mut changed = false;
        for (pos, mask) in flips {
            let i = pos % bytes.len();
            bytes[i] ^= (mask & 0xff) as u8;
            changed = true;
        }
        prop_assert!(changed);
        // Double flips at one index can cancel; only assert rejection
        // when the frame actually differs from the original.
        let original = encode_framed(KIND_MODEL, &model);
        if bytes != original {
            prop_assert!(decode_framed::<Model>(KIND_MODEL, &bytes).is_err());
        }
    }

    /// Truncating a random valid artifact at a random point is always
    /// a typed error — across random learner choices.
    #[test]
    fn random_truncation_is_typed(cut_frac in 0.0f64..1.0, learner_idx in 0usize..5) {
        let model = all_learners()[learner_idx].fit(&training_data());
        let bytes = encode_framed(KIND_MODEL, &model);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        if cut < bytes.len() {
            prop_assert!(decode_framed::<Model>(KIND_MODEL, &bytes[..cut]).is_err());
        }
    }
}
