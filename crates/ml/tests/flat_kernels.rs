//! Property tests pinning every SoA inference kernel to the scalar
//! early-exit reference — bitwise, not tolerance-based.
//!
//! The flattened ensemble has four prediction paths (scalar/batch ×
//! binned/unbinned) that must agree bit for bit on *every* input,
//! including NaN and ±∞ feature values (which must route like the f64
//! comparison: NaN right, never off a leaf) and depth-0 stump trees
//! (whose leaf self-loops exercise the park-on-leaf encoding). The
//! persist codec must also rebuild the derived SoA state (right
//! children, depths, bin plan) into a bitwise-identical predictor.
//!
//! These run under Miri in CI with a reduced `PROPTEST_CASES`, so the
//! `get_unchecked` lockstep loops are exercised under the strictest
//! aliasing/bounds model available.

use proptest::prelude::*;

use mpcp_ml::flat::FlatTrees;
use mpcp_ml::persist::{ByteReader, ByteWriter, Persist};
use mpcp_ml::tree::{GradTree, SortedColumns, TreeParams};
use mpcp_ml::Dataset;

/// Grow a small ensemble deterministically from generated rows; a
/// `max_depth` of 0 produces single-leaf stumps (self-loop leaves).
fn grow(rows: &[(f64, f64, f64)], ntrees: usize, max_depth: usize) -> FlatTrees {
    let mut d = Dataset::new(2);
    for &(a, b, y) in rows {
        d.push(&[a, b], y);
    }
    let sorted = SortedColumns::new(&d);
    let params = TreeParams { max_depth, lambda: 1.0, ..Default::default() };
    let trees: Vec<GradTree> = (0..ntrees)
        .map(|t| {
            // Vary the gradients per round so the trees differ.
            let g: Vec<f64> = rows
                .iter()
                .enumerate()
                .map(|(i, r)| -r.2 * (1.0 + 0.3 * ((i + t) as f64).sin()))
                .collect();
            let h = vec![1.0; d.len()];
            GradTree::fit(&d, &sorted, &g, &h, &params, &[0, 1], None)
        })
        .collect();
    FlatTrees::from_trees(&trees, 0.3)
}

/// A feature value that may be NaN or ±∞, not just in-range.
fn wild_value() -> impl Strategy<Value = f64> {
    // Repeated range arms weight toward in-range values (the vendored
    // `prop_oneof!` picks arms uniformly).
    prop_oneof![
        -150.0f64..150.0,
        -150.0f64..150.0,
        -150.0f64..150.0,
        -150.0f64..150.0,
        Just(f64::NAN),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        Just(-0.0f64),
    ]
}

/// All four prediction paths for `xs`, asserted bitwise-equal; returns
/// the batch result for further checks.
fn assert_paths_agree(flat: &FlatTrees, xs: &[f64]) -> Result<Vec<f64>, TestCaseError> {
    let rows = xs.len() / 2;
    let mut batch = vec![0.25f64; rows];
    let mut unbinned = vec![0.25f64; rows];
    flat.predict_batch_into(xs, 2, &mut batch);
    flat.predict_batch_into_unbinned(xs, 2, &mut unbinned);
    for i in 0..rows {
        let row = &xs[i * 2..(i + 1) * 2];
        prop_assert_eq!(
            batch[i].to_bits(),
            unbinned[i].to_bits(),
            "row {}: binned batch vs unbinned batch",
            i
        );
        let scalar = flat.predict_one_from(row, 0.25);
        prop_assert_eq!(batch[i].to_bits(), scalar.to_bits(), "row {}: batch vs scalar", i);
        let reference = flat.predict_one_from_unbinned(row, 0.25);
        prop_assert_eq!(scalar.to_bits(), reference.to_bits(), "row {}: scalar vs reference", i);
    }
    Ok(batch)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Tentpole invariant: binned SoA batch ≡ unbinned batch ≡ binned
    /// scalar ≡ unbinned scalar, bitwise, on wild inputs (NaN, ±∞,
    /// negative zero, far off-grid) — and the result is always finite,
    /// i.e. no kernel ever walks off a leaf self-loop.
    #[test]
    fn all_four_kernel_paths_agree_bitwise(
        rows in prop::collection::vec(
            ((-100.0f64..100.0), (-100.0f64..100.0), (0.1f64..100.0)), 4..40),
        queries in prop::collection::vec((wild_value(), wild_value()), 1..40),
        ntrees in 1usize..6,
        max_depth in 1usize..6,
    ) {
        let flat = grow(&rows, ntrees, max_depth);
        prop_assert!(flat.has_bin_plan(), "small exact ensembles fit the bin budget");
        let xs: Vec<f64> = queries.iter().flat_map(|&(a, b)| [a, b]).collect();
        let batch = assert_paths_agree(&flat, &xs)?;
        for (i, p) in batch.iter().enumerate() {
            prop_assert!(p.is_finite(), "row {} produced {}", i, p);
        }
    }

    /// Depth-0 stumps are all leaf self-loops: the batch fast path, the
    /// lockstep block path, and scalar traversal must all emit the same
    /// constant regardless of (possibly non-finite) features.
    #[test]
    fn stump_ensembles_predict_their_constant(
        rows in prop::collection::vec(
            ((-50.0f64..50.0), (-50.0f64..50.0), (0.5f64..50.0)), 2..20),
        queries in prop::collection::vec((wild_value(), wild_value()), 1..40),
        ntrees in 1usize..20,
    ) {
        let flat = grow(&rows, ntrees, 0);
        let xs: Vec<f64> = queries.iter().flat_map(|&(a, b)| [a, b]).collect();
        let batch = assert_paths_agree(&flat, &xs)?;
        // Every query lands on the same leaves: one constant.
        let expect = flat.predict_one_from(&[0.0, 0.0], 0.25);
        for (i, p) in batch.iter().enumerate() {
            prop_assert_eq!(p.to_bits(), expect.to_bits(), "row {} is not the stump constant", i);
        }
    }

    /// A mixed ensemble (stumps between real trees) keeps summation
    /// order and bitwise agreement across all paths.
    #[test]
    fn mixed_depth_ensembles_agree_bitwise(
        rows in prop::collection::vec(
            ((-100.0f64..100.0), (-100.0f64..100.0), (0.1f64..100.0)), 4..30),
        queries in prop::collection::vec((wild_value(), wild_value()), 1..30),
    ) {
        let mut d = Dataset::new(2);
        for &(a, b, y) in &rows {
            d.push(&[a, b], y);
        }
        let sorted = SortedColumns::new(&d);
        let g: Vec<f64> = rows.iter().map(|r| -r.2).collect();
        let h = vec![1.0; d.len()];
        let deep = TreeParams { max_depth: 5, lambda: 1.0, ..Default::default() };
        let stump = TreeParams { max_depth: 0, lambda: 1.0, ..Default::default() };
        let trees = vec![
            GradTree::fit(&d, &sorted, &g, &h, &deep, &[0, 1], None),
            GradTree::fit(&d, &sorted, &g, &h, &stump, &[0, 1], None),
            GradTree::fit(&d, &sorted, &g, &h, &deep, &[0], None),
        ];
        let flat = FlatTrees::from_trees(&trees, 0.7);
        let xs: Vec<f64> = queries.iter().flat_map(|&(a, b)| [a, b]).collect();
        assert_paths_agree(&flat, &xs)?;
    }

    /// Persist round-trip: the decoder rebuilds the derived SoA state
    /// (right children, depths, bin plan) into a predictor that is
    /// bitwise identical on every path, and re-encoding is byte-stable.
    #[test]
    fn persist_roundtrip_is_bitwise_identical(
        rows in prop::collection::vec(
            ((-100.0f64..100.0), (-100.0f64..100.0), (0.1f64..100.0)), 4..40),
        queries in prop::collection::vec((wild_value(), wild_value()), 1..20),
        ntrees in 1usize..5,
        max_depth in 0usize..5,
    ) {
        let flat = grow(&rows, ntrees, max_depth);
        let mut w = ByteWriter::new();
        flat.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let decoded = FlatTrees::decode(&mut r).expect("valid encoding decodes");
        prop_assert_eq!(decoded.num_trees(), flat.num_trees());
        prop_assert_eq!(decoded.num_nodes(), flat.num_nodes());
        prop_assert_eq!(decoded.has_bin_plan(), flat.has_bin_plan());
        let xs: Vec<f64> = queries.iter().flat_map(|&(a, b)| [a, b]).collect();
        let original = assert_paths_agree(&flat, &xs)?;
        let reloaded = assert_paths_agree(&decoded, &xs)?;
        for i in 0..original.len() {
            prop_assert_eq!(original[i].to_bits(), reloaded[i].to_bits(), "row {} drifted", i);
        }
        let mut w2 = ByteWriter::new();
        decoded.encode(&mut w2);
        prop_assert_eq!(w2.into_bytes(), bytes, "re-encoding is not byte-stable");
    }
}
