//! Property tests pinning the histogram split kernel to the exact
//! sorted-column reference, and the batched predictors to the scalar
//! ones.
//!
//! When every feature has at most `max_bins` distinct values, binning is
//! lossless (one bin per distinct value, thresholds at midpoints), so
//! `fit_hist` must reproduce the exact kernel's trees: same candidate
//! splits, same gains, same training-row partitions and leaf values.
//! The datasets generated here stay under that budget, so equivalence
//! is asserted to 1e-9 — not approximately, structurally.

use proptest::prelude::*;

use mpcp_ml::gbt::{GbtModel, GbtParams, TreeMethod};
use mpcp_ml::hist::{fit_hist, BinnedDataset};
use mpcp_ml::tree::{GradTree, SortedColumns, TreeParams};
use mpcp_ml::Dataset;

fn dataset_2d(rows: &[(f64, f64, f64)]) -> Dataset {
    let mut d = Dataset::new(2);
    for &(a, b, y) in rows {
        d.push(&[a, b], y);
    }
    d
}

/// Gradient pairs with strictly positive hessians, as every objective
/// in `gbt` produces.
fn grad_pairs(n: usize) -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec(((-5.0f64..5.0), (0.01f64..5.0)), n..n + 1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Core tentpole guarantee: with a full bin budget, one histogram
    /// tree equals one exact tree — same structure, same leaf values on
    /// every training row, and `row_pred` is exactly the tree's output.
    #[test]
    fn hist_tree_matches_exact_tree(
        rows in prop::collection::vec(
            ((-100.0f64..100.0), (-100.0f64..100.0), (0.1f64..100.0)), 4..60),
        seeds in (0u64..1000),
        max_depth in 1usize..7,
        gamma in prop::sample::select(vec![0.0f64, 0.05, 0.5]),
        min_child_weight in prop::sample::select(vec![0.0f64, 1.0, 3.0]),
    ) {
        let d = dataset_2d(&rows);
        // Pseudo-random but deterministic gradient stats derived from
        // the targets, so g/h vary with the generated rows.
        let g: Vec<f64> = rows.iter().enumerate()
            .map(|(i, r)| (r.2 * (1.3 + (i as f64 + seeds as f64).sin())).fract() * 4.0 - 2.0)
            .collect();
        let h: Vec<f64> = rows.iter().enumerate()
            .map(|(i, r)| 0.05 + (r.2 + i as f64).cos().abs())
            .collect();
        let params = TreeParams { max_depth, min_child_weight, lambda: 1.0, gamma };
        let features = [0usize, 1];

        let sorted = SortedColumns::new(&d);
        let exact = GradTree::fit(&d, &sorted, &g, &h, &params, &features, None);

        let binned = BinnedDataset::from_dataset(&d, BinnedDataset::MAX_BINS);
        let (hist, row_leaf) = fit_hist(&binned, &g, &h, &params, &features, None);

        prop_assert_eq!(exact.node_count(), hist.node_count());
        for (i, &leaf) in row_leaf.iter().enumerate() {
            let pe = exact.predict(d.row(i));
            let ph = hist.predict(d.row(i));
            prop_assert!((pe - ph).abs() <= 1e-9, "row {i}: exact {pe} vs hist {ph}");
            prop_assert!(hist.value_of(leaf) == ph,
                "row {i}: leaf id {leaf} vs traversal {ph}");
        }
    }

    /// The equivalence survives boosting: a full Hist-method ensemble
    /// reproduces the Exact-method ensemble round for round.
    #[test]
    fn hist_boosting_matches_exact_boosting(
        rows in prop::collection::vec(
            ((-50.0f64..50.0), (0.0f64..10.0), (0.5f64..500.0)), 5..40),
        rounds in 1usize..25,
    ) {
        let d = dataset_2d(&rows);
        let exact = GbtModel::fit(&d, &GbtParams {
            rounds, tree_method: TreeMethod::Exact, ..Default::default()
        });
        let hist = GbtModel::fit(&d, &GbtParams {
            rounds, tree_method: TreeMethod::Hist, ..Default::default()
        });
        for i in 0..d.len() {
            let pe = exact.predict(d.row(i));
            let ph = hist.predict(d.row(i));
            // Leaf values agree to ~1e-9 per round; on the response
            // scale (after exp) allow a matching relative slack.
            prop_assert!((pe - ph).abs() <= 1e-7 * pe.abs().max(1.0),
                "row {i}: exact {pe} vs hist {ph}");
        }
    }

    /// With a *reduced* bin budget the trees may legitimately differ
    /// from exact, but the kernel must stay well-formed: finite leaf
    /// values and `row_pred` consistent with tree traversal.
    #[test]
    fn coarse_binning_stays_consistent(
        rows in prop::collection::vec(
            ((-100.0f64..100.0), (-100.0f64..100.0), (0.1f64..100.0)), 8..80),
        max_bins in 2usize..16,
        grads in grad_pairs(80),
    ) {
        let d = dataset_2d(&rows);
        let g: Vec<f64> = grads.iter().take(d.len()).map(|p| p.0).collect();
        let h: Vec<f64> = grads.iter().take(d.len()).map(|p| p.1).collect();
        let params = TreeParams {
            max_depth: 6, min_child_weight: 1.0, lambda: 1.0, gamma: 0.0,
        };
        let binned = BinnedDataset::from_dataset(&d, max_bins);
        let (tree, row_leaf) = fit_hist(&binned, &g, &h, &params, &[0, 1], None);
        for (i, &leaf) in row_leaf.iter().enumerate() {
            let p = tree.predict(d.row(i));
            prop_assert!(p.is_finite());
            prop_assert!(tree.value_of(leaf) == p);
        }
    }

    /// Batched prediction is the scalar path, vectorized — exact
    /// elementwise agreement, not tolerance-based.
    #[test]
    fn predict_batch_matches_scalar_predict(
        rows in prop::collection::vec(
            ((-50.0f64..50.0), (0.0f64..10.0), (0.5f64..500.0)), 5..40),
        queries in prop::collection::vec(((-60.0f64..60.0), (-1.0f64..12.0)), 1..50),
        rounds in 1usize..30,
    ) {
        let d = dataset_2d(&rows);
        let model = GbtModel::fit(&d, &GbtParams { rounds, ..Default::default() });
        let mut xs = Vec::with_capacity(queries.len() * 2);
        for &(a, b) in &queries {
            xs.extend_from_slice(&[a, b]);
        }
        let batch = model.predict_batch(&xs, 2);
        prop_assert_eq!(batch.len(), queries.len());
        for (i, &(a, b)) in queries.iter().enumerate() {
            let scalar = model.predict(&[a, b]);
            prop_assert!(
                batch[i] == scalar,
                "row {i}: batch {} vs scalar {scalar}", batch[i]
            );
        }
    }
}
