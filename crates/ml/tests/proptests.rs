//! Property-based tests for the learners: structural invariants that
//! must hold for any (reasonable) dataset.

use proptest::prelude::*;

use mpcp_ml::bspline::BsplineBasis;
use mpcp_ml::cv::kfold_indices;
use mpcp_ml::gbt::{GbtModel, GbtParams, Objective};
use mpcp_ml::kdtree::KdTree;
use mpcp_ml::knn::{KnnModel, KnnParams};
use mpcp_ml::linalg::{solve_spd_with_jitter, Cholesky, Mat};
use mpcp_ml::scaling::StandardScaler;
use mpcp_ml::Dataset;

fn dataset_2d(rows: &[(f64, f64, f64)]) -> Dataset {
    let mut d = Dataset::new(2);
    for &(a, b, y) in rows {
        d.push(&[a, b], y);
    }
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn knn_prediction_within_target_range(
        rows in prop::collection::vec(
            ((-100.0f64..100.0), (-100.0f64..100.0), (0.1f64..1000.0)), 2..60),
        q in ((-200.0f64..200.0), (-200.0f64..200.0)),
        k in 1usize..8,
    ) {
        let d = dataset_2d(&rows);
        let model = KnnModel::fit(&d, &KnnParams { k, scale: true });
        let p = model.predict(&[q.0, q.1]);
        let lo = rows.iter().map(|r| r.2).fold(f64::INFINITY, f64::min);
        let hi = rows.iter().map(|r| r.2).fold(0.0f64, f64::max);
        prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "{p} not in [{lo},{hi}]");
    }

    #[test]
    fn kdtree_matches_brute_force(
        rows in prop::collection::vec(
            ((-10.0f64..10.0), (-10.0f64..10.0), (0.0f64..1.0)), 1..80),
        q in ((-12.0f64..12.0), (-12.0f64..12.0)),
        k in 1usize..6,
    ) {
        let pts: Vec<(Vec<f64>, f64)> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| (vec![r.0, r.1], i as f64))
            .collect();
        let tree = KdTree::build(pts.clone());
        let got = tree.nearest(&[q.0, q.1], k);
        let mut brute: Vec<f64> = pts
            .iter()
            .map(|(x, _)| (x[0] - q.0).powi(2) + (x[1] - q.1).powi(2))
            .collect();
        brute.sort_by(|a, b| a.total_cmp(b));
        for (i, (d2, _)) in got.iter().enumerate() {
            prop_assert!((d2 - brute[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn gbt_positive_objectives_predict_positive(
        targets in prop::collection::vec(0.001f64..1e6, 4..40),
        query in -50.0f64..50.0,
    ) {
        let mut d = Dataset::new(1);
        for (i, &y) in targets.iter().enumerate() {
            d.push(&[i as f64], y);
        }
        for objective in [Objective::Gamma, Objective::Tweedie { p: 1.5 }] {
            let m = GbtModel::fit(&d, &GbtParams { rounds: 10, objective, ..Default::default() });
            let p = m.predict(&[query]);
            prop_assert!(p.is_finite() && p > 0.0, "{objective:?}: {p}");
        }
    }

    #[test]
    fn scaler_transform_is_affine_invertible(
        rows in prop::collection::vec(((-1e6f64..1e6), (0.0f64..1.0)), 2..50),
    ) {
        let mut d = Dataset::new(2);
        for &(a, b) in &rows {
            d.push(&[a, b], 0.0);
        }
        let sc = StandardScaler::fit(&d);
        // Affinity: t(x) - t(y) is proportional to x - y per coordinate.
        let x = [rows[0].0, rows[0].1];
        let y = [rows[1].0, rows[1].1];
        let tx = sc.transform(&x);
        let ty = sc.transform(&y);
        let mid = [(x[0] + y[0]) / 2.0, (x[1] + y[1]) / 2.0];
        let tm = sc.transform(&mid);
        for i in 0..2 {
            let expect = (tx[i] + ty[i]) / 2.0;
            prop_assert!((tm[i] - expect).abs() < 1e-6);
        }
    }

    #[test]
    fn kfold_partitions(n in 2usize..200, k in 2usize..8) {
        let folds = kfold_indices(n, k);
        let mut seen = vec![0u32; n];
        for (train, test) in &folds {
            prop_assert_eq!(train.len() + test.len(), n);
            for &i in test {
                seen[i] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn cholesky_solves_spd_systems(
        vals in prop::collection::vec(-2.0f64..2.0, 9),
        b in prop::collection::vec(-5.0f64..5.0, 3),
    ) {
        // A = MᵀM + I is always SPD.
        let m = Mat::from_rows(&[
            &vals[0..3], &vals[3..6], &vals[6..9],
        ]);
        let mut a = m.gram_weighted(None);
        a.add_diag(1.0);
        let x = Cholesky::new(&a).unwrap().solve(&b);
        for i in 0..3 {
            let mut s = 0.0;
            for j in 0..3 {
                s += a[(i, j)] * x[j];
            }
            prop_assert!((s - b[i]).abs() < 1e-8);
        }
        // The jitter solver agrees on well-conditioned systems.
        let x2 = solve_spd_with_jitter(&a, &b, 0.0);
        for i in 0..3 {
            prop_assert!((x[i] - x2[i]).abs() < 1e-8);
        }
    }

    #[test]
    fn bspline_partition_of_unity(
        values in prop::collection::vec(-1000.0f64..1000.0, 2..100),
        x in -2000.0f64..2000.0,
        interior in 1usize..12,
    ) {
        if let Some(basis) = BsplineBasis::from_quantiles(&values, interior) {
            let v = basis.eval(x);
            let sum: f64 = v.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
            prop_assert!(v.iter().all(|&e| e >= -1e-12));
        }
    }
}
