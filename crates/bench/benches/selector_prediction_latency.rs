//! Prediction latency of a trained selector — the paper's Section II
//! notes offline use tolerates seconds while online use needs
//! microseconds; this measures where each learner lands.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpcp_bench::trained_selector;
use mpcp_collectives::Collective;
use mpcp_core::Instance;
use mpcp_ml::Learner;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("selector_prediction_latency");
    g.sample_size(50);
    for learner in [Learner::knn(), Learner::gam(), Learner::xgboost()] {
        let selector = trained_selector(&learner);
        let inst = Instance::new(Collective::Allreduce, 64 << 10, 6, 8);
        g.bench_function(BenchmarkId::from_parameter(learner.name()), |b| {
            b.iter(|| selector.select(std::hint::black_box(&inst)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
