//! Prediction latency of a trained selector — the paper's Section II
//! notes offline use tolerates seconds while online use needs
//! microseconds; this measures where each learner lands, for both the
//! scalar `select` path and the batched `select_batch` path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpcp_bench::trained_selector;
use mpcp_collectives::Collective;
use mpcp_core::Instance;
use mpcp_ml::Learner;

/// A block of query instances spanning the message-size/scale grid.
fn query_block(n: usize) -> Vec<Instance> {
    (0..n)
        .map(|i| {
            Instance::new(
                Collective::Allreduce,
                1u64 << (4 + (i % 16)),
                2 + (i % 7) as u32,
                1 + (i % 8) as u32,
            )
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("selector_prediction_latency");
    g.sample_size(50);
    for learner in [Learner::knn(), Learner::gam(), Learner::xgboost()] {
        let selector = trained_selector(&learner);
        let inst = Instance::new(Collective::Allreduce, 64 << 10, 6, 8);
        g.bench_function(BenchmarkId::from_parameter(learner.name()), |b| {
            b.iter(|| selector.select(std::hint::black_box(&inst)))
        });
    }
    g.finish();

    // Batched selection throughput: the same argmin over a block of
    // instances, scalar loop vs `select_batch`.
    let selector = trained_selector(&Learner::xgboost());
    let block = query_block(512);
    let mut g = c.benchmark_group("selector_batch_512");
    g.sample_size(20);
    g.throughput(Throughput::Elements(block.len() as u64));
    g.bench_function("select_loop", |b| {
        b.iter(|| {
            std::hint::black_box(&block)
                .iter()
                .map(|i| selector.select(i))
                .collect::<Vec<_>>()
        })
    });
    g.bench_function("select_batch", |b| {
        b.iter(|| selector.select_batch(std::hint::black_box(&block)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
