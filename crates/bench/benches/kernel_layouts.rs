//! AoS vs SoA vs binned-SoA inference kernels, measured in-repo.
//!
//! The flat-tree module stores ensembles as structure-of-arrays with an
//! optional exact u8 bin plan; earlier revisions packed nodes into
//! 16-byte array-of-structs records and traversed them row by row.
//! This bench reconstructs that AoS layout (from the persist wire
//! format, which still *is* the packed node record) and races the three
//! kernels on the same XGBoost-style ensemble and query block, so the
//! layout win is a measured number rather than an assertion.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mpcp_bench::training_dataset;
use mpcp_ml::flat::FlatTrees;
use mpcp_ml::gbt::{GbtModel, GbtParams};
use mpcp_ml::persist::{ByteReader, ByteWriter, Persist};

const NFEAT: usize = 4;
const ROWS: usize = 512;

/// The pre-SoA layout: one 16-byte record per node, early-exit
/// traversal per row. Reference implementation only — kept here so the
/// comparison cannot silently drift out of the repo.
struct AosNode {
    thresh: f64,
    feat: u32,
    left: u32,
}

struct AosTrees {
    nodes: Vec<AosNode>,
    value: Vec<f64>,
    roots: Vec<u32>,
}

impl AosTrees {
    /// Rebuild the packed layout from the flat ensemble's wire format
    /// (length-prefixed `(thresh, feat, left)` records, then values,
    /// then roots — unchanged since the AoS era).
    fn from_flat(flat: &FlatTrees) -> AosTrees {
        let mut w = ByteWriter::new();
        flat.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let n = r.get_len(16).expect("node count");
        let mut nodes = Vec::with_capacity(n);
        for _ in 0..n {
            nodes.push(AosNode {
                thresh: r.get_f64().expect("thresh"),
                feat: r.get_u32().expect("feat"),
                left: r.get_u32().expect("left"),
            });
        }
        let value = r.get_f64s().expect("values");
        let roots = r.get_u32s().expect("roots");
        AosTrees { nodes, value, roots }
    }

    fn predict_one(&self, x: &[f64]) -> f64 {
        let mut s = 0.0;
        for &root in &self.roots {
            let mut i = root as usize;
            loop {
                let node = &self.nodes[i];
                let l = node.left as usize;
                if l == i {
                    s += self.value[i];
                    break;
                }
                i = if x[node.feat as usize] <= node.thresh { l } else { l + 1 };
            }
        }
        s
    }

    fn predict_batch_into(&self, xs: &[f64], nfeat: usize, out: &mut [f64]) {
        for (row, o) in xs.chunks_exact(nfeat).zip(out.iter_mut()) {
            *o += self.predict_one(row);
        }
    }
}

fn query_rows() -> Vec<f64> {
    let mut xs = Vec::with_capacity(ROWS * NFEAT);
    for i in 0..ROWS {
        let m = (1u64 << (2 * (i % 11))) as f64;
        let p = [4.0f64, 8.0, 16.0, 32.0, 64.0, 128.0][i % 6];
        xs.extend_from_slice(&[m.ln(), p / 4.0, 4.0, p]);
    }
    xs
}

fn bench(c: &mut Criterion) {
    let model = GbtModel::fit(&training_dataset(3), &GbtParams::default());
    let flat = model.flat();
    assert!(flat.has_bin_plan(), "hist-grown ensemble must carry a bin plan");
    let aos = AosTrees::from_flat(flat);
    let xs = query_rows();

    // Sanity: all three layouts answer identically before we time them.
    let mut a = vec![0.0; ROWS];
    let mut b = vec![0.0; ROWS];
    let mut d = vec![0.0; ROWS];
    aos.predict_batch_into(&xs, NFEAT, &mut a);
    flat.predict_batch_into_unbinned(&xs, NFEAT, &mut b);
    flat.predict_batch_into(&xs, NFEAT, &mut d);
    assert_eq!(a, b);
    assert_eq!(b, d);

    let mut g = c.benchmark_group("kernel_layouts_batch_512");
    g.sample_size(30);
    g.throughput(Throughput::Elements(ROWS as u64));
    g.bench_function("aos", |bch| {
        bch.iter(|| {
            let mut out = vec![0.0; ROWS];
            aos.predict_batch_into(std::hint::black_box(&xs), NFEAT, &mut out);
            out
        })
    });
    g.bench_function("soa_unbinned", |bch| {
        bch.iter(|| {
            let mut out = vec![0.0; ROWS];
            flat.predict_batch_into_unbinned(std::hint::black_box(&xs), NFEAT, &mut out);
            out
        })
    });
    g.bench_function("soa_binned", |bch| {
        bch.iter(|| {
            let mut out = vec![0.0; ROWS];
            flat.predict_batch_into(std::hint::black_box(&xs), NFEAT, &mut out);
            out
        })
    });
    g.finish();

    // The uncached serving shape: one row at a time.
    let row = &xs[..NFEAT];
    let mut g = c.benchmark_group("kernel_layouts_scalar");
    g.sample_size(50);
    g.bench_function("aos", |bch| {
        bch.iter(|| aos.predict_one(std::hint::black_box(row)))
    });
    g.bench_function("soa_unbinned", |bch| {
        bch.iter(|| flat.predict_one_from_unbinned(std::hint::black_box(row), 0.0))
    });
    g.bench_function("soa_binned", |bch| {
        bch.iter(|| flat.predict_one_from(std::hint::black_box(row), 0.0))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
