//! Fig. 2 micro-harness: simulation cost of the chain-vs-linear
//! broadcast comparison that generates the figure (one cell per bench).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpcp_collectives::AlgKind;
use mpcp_simnet::{Machine, Simulator, Topology};

fn bench(c: &mut Criterion) {
    let machine = Machine::hydra();
    let topo = Topology::new(8, 8);
    let sim = Simulator::new(&machine.model, &topo);
    let m = 1 << 20;
    let mut g = c.benchmark_group("fig2_cell");
    g.sample_size(20);
    for (name, kind) in [
        ("linear", AlgKind::BcastLinear),
        ("chain_c4_seg64K", AlgKind::BcastChain { chains: 4, seg: 64 << 10 }),
        ("chain_c16_seg1K", AlgKind::BcastChain { chains: 16, seg: 1 << 10 }),
    ] {
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let progs = kind.build(&topo, m);
                sim.run(std::hint::black_box(&progs)).unwrap().makespan()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
