//! Raw discrete-event engine throughput on representative schedules
//! (events per second drives total dataset-generation cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpcp_collectives::AlgKind;
use mpcp_simnet::{Machine, Simulator, Topology};

fn bench(c: &mut Criterion) {
    let machine = Machine::hydra();
    let cases = [
        ("ring_allreduce_64ranks_1M", AlgKind::AllreduceRing, Topology::new(8, 8), 1u64 << 20),
        ("chain_bcast_128ranks_4M_seg1K", AlgKind::BcastChain { chains: 4, seg: 1 << 10 },
         Topology::new(16, 8), 4 << 20),
        ("alltoall_linear_64ranks_4K", AlgKind::AlltoallLinear, Topology::new(8, 8), 4 << 10),
    ];
    let mut g = c.benchmark_group("simulator_event_rate");
    g.sample_size(10);
    for (name, kind, topo, m) in cases {
        let sim = Simulator::new(&machine.model, &topo);
        let progs = kind.build(&topo, m);
        let events = sim.run(&progs).unwrap().events;
        g.throughput(Throughput::Elements(events));
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| sim.run(std::hint::black_box(&progs)).unwrap().events)
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
