//! Per-learner model-fitting time on a runtime-surface dataset (one
//! model of the paper's per-configuration ensemble), including the
//! exact-vs-histogram GBT kernel comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpcp_bench::training_dataset;
use mpcp_ml::gbt::{GbtParams, TreeMethod};
use mpcp_ml::Learner;

fn bench(c: &mut Criterion) {
    let data = training_dataset(10); // 600 rows
    let mut g = c.benchmark_group("learner_fit_600rows");
    g.sample_size(10);
    // 50 boosting rounds keeps the bench turnaround sane; scale by 4
    // for the paper's 200 rounds. Both GBT split kernels are measured:
    // `hist` is the default, `exact` the reference baseline it must beat.
    let xgb_hist = Learner::Xgb(GbtParams {
        rounds: 50,
        tree_method: TreeMethod::Hist,
        ..GbtParams::default()
    });
    let xgb_exact = Learner::Xgb(GbtParams {
        rounds: 50,
        tree_method: TreeMethod::Exact,
        ..GbtParams::default()
    });
    for (name, learner) in [
        ("KNN", Learner::knn()),
        ("GAM", Learner::gam()),
        ("XGBoost-hist", xgb_hist),
        ("XGBoost-exact", xgb_exact),
        ("RandomForest", Learner::forest()),
        ("Linear", Learner::linear()),
    ] {
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| learner.fit(std::hint::black_box(&data)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
