//! Per-learner model-fitting time on a runtime-surface dataset (one
//! model of the paper's per-configuration ensemble).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpcp_bench::training_dataset;
use mpcp_ml::gbt::GbtParams;
use mpcp_ml::Learner;

fn bench(c: &mut Criterion) {
    let data = training_dataset(10); // 600 rows
    let mut g = c.benchmark_group("learner_fit_600rows");
    g.sample_size(10);
    for learner in [
        Learner::knn(),
        Learner::gam(),
        // 50 boosting rounds keeps the bench turnaround sane; scale by 4
        // for the paper's 200 rounds.
        Learner::Xgb(GbtParams { rounds: 50, ..GbtParams::default() }),
        Learner::forest(),
        Learner::linear(),
    ] {
        g.bench_function(BenchmarkId::from_parameter(learner.name()), |b| {
            b.iter(|| learner.fit(std::hint::black_box(&data)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
