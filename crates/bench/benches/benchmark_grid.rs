//! Throughput of the ReproMPI-style benchmarking step over a small grid
//! (cells per second bounds full-dataset generation time).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mpcp_bench::bench_spec;
use mpcp_benchmark::BenchConfig;

fn bench(c: &mut Criterion) {
    let spec = bench_spec();
    let lib = spec.library(None);
    let cells = spec.sample_count(&lib) as u64;
    let mut g = c.benchmark_group("benchmark_grid");
    g.sample_size(10);
    g.throughput(Throughput::Elements(cells));
    g.bench_function("generate_tiny_grid", |b| {
        b.iter(|| spec.generate(std::hint::black_box(&lib), &BenchConfig::quick()).records.len())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
