//! Micro-variant of the Table IV pipeline: train + evaluate one learner
//! on the shared miniature dataset (full Table IV runs via the
//! `table4` experiment binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpcp_bench::bench_records;
use mpcp_core::{evaluate, mean_speedup, splits, Selector};
use mpcp_ml::Learner;

fn bench(c: &mut Criterion) {
    let (spec, lib, records) = bench_records();
    let train = splits::filter_records(&records, &[2, 8]);
    let test = splits::filter_records(&records, &[4]);
    let mut g = c.benchmark_group("table4_micro");
    g.sample_size(10);
    for learner in [Learner::knn(), Learner::gam()] {
        g.bench_function(BenchmarkId::from_parameter(learner.name()), |b| {
            b.iter(|| {
                let sel = Selector::train(&learner, &train, lib.configs(spec.coll)).unwrap();
                mean_speedup(&evaluate(&sel, &test, &lib, spec.coll))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
