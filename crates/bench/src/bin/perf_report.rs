//! PR 1/2 acceptance benchmark: exact-vs-histogram GBT training,
//! scalar-vs-batched selector inference, and (PR 2) the cost of the
//! observability layer, written as machine-readable JSON.
//!
//! Run with `cargo run --release -p mpcp-bench --bin perf_report`.
//! Emits `BENCH_PR2.json` in the current directory (pass a path as the
//! first argument to write elsewhere) and prints a summary table.
//!
//! Acceptance gates checked here:
//! * histogram training of the paper's 200-round booster is ≥ 3× faster
//!   than the exact kernel at equal-or-better held-out Tweedie deviance;
//! * `Selector::select_batch` beats calling `Selector::select` in a
//!   loop by ≥ 1.1×. (Before PR 6 this gate demanded 2×; the scalar
//!   argmin now runs the same packed-word lockstep kernels as the
//!   batch path, so batch's remaining edge — row-lockstep blocks and
//!   one quantization per block — is structural but modest. The gate
//!   keeps batch from ever regressing below the loop.)
//!
//! The PR 2 `tracing_overhead` section measures the same training and
//! batched-selection workloads with tracing enabled (spans, counters,
//! per-round deviance scoring, drain) against the disabled path, and —
//! when a committed `BENCH_PR1.json` from the same machine is present —
//! compares the disabled-path timings against the pre-instrumentation
//! baseline (the "within 2%" regression check).

use std::time::Instant;

use mpcp_bench::{trained_selector, training_dataset};
use mpcp_collectives::Collective;
use mpcp_core::Instance;
use mpcp_ml::gbt::{GbtModel, GbtParams, TreeMethod};
use mpcp_ml::metrics::tweedie_deviance;
use mpcp_ml::{Dataset, Learner};

const TWEEDIE_P: f64 = 1.5;

/// Sorted wall times of `reps` *interleaved* runs of `a` and `b`
/// (after one warm-up of each). Alternating the two workloads means
/// clock drift or thermal throttling shifts both samples together
/// instead of biasing whichever ran second. Callers pick the
/// statistic: `[reps / 2]` (median) for long fits, `[0]` (minimum —
/// the least-interference estimate) for microsecond-scale kernels.
fn time_pair<A, B>(
    reps: usize,
    mut a: impl FnMut() -> A,
    mut b: impl FnMut() -> B,
) -> (Vec<f64>, Vec<f64>) {
    std::hint::black_box(a());
    std::hint::black_box(b());
    let (mut ta, mut tb) = (Vec::with_capacity(reps), Vec::with_capacity(reps));
    for _ in 0..reps {
        let t0 = Instant::now();
        std::hint::black_box(a());
        ta.push(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        std::hint::black_box(b());
        tb.push(t0.elapsed().as_secs_f64());
    }
    ta.sort_by(|x, y| x.total_cmp(y));
    tb.sort_by(|x, y| x.total_cmp(y));
    (ta, tb)
}

/// Split the bench-grid dataset into train (4 of 5 rows) and held-out
/// test (every 5th row).
fn split(data: &Dataset) -> (Dataset, Dataset) {
    let mut train = Dataset::new(data.nfeat());
    let mut test = Dataset::new(data.nfeat());
    for i in 0..data.len() {
        if i % 5 == 0 {
            test.push(data.row(i), data.targets()[i]);
        } else {
            train.push(data.row(i), data.targets()[i]);
        }
    }
    (train, test)
}

fn holdout_deviance(model: &GbtModel, test: &Dataset) -> f64 {
    let preds: Vec<f64> = (0..test.len()).map(|i| model.predict(test.row(i))).collect();
    tweedie_deviance(test.targets(), &preds, TWEEDIE_P)
}

/// One timed workload with tracing flipped on around it; the drain and
/// metrics reset are inside the timed region because they are part of
/// the cost of *using* the tracing layer.
fn timed_traced<T>(mut f: impl FnMut() -> T) -> impl FnMut() -> T {
    move || {
        mpcp_obs::set_enabled(true);
        let out = f();
        mpcp_obs::set_enabled(false);
        std::hint::black_box(mpcp_obs::drain().len());
        mpcp_obs::metrics::reset();
        out
    }
}

/// Baseline timings from a committed BENCH_PR1.json, if present and
/// parseable: `(hist_secs, select_batch_secs)`.
fn pr1_baseline(path: &str) -> Option<(f64, f64)> {
    let doc = mpcp_obs::json::parse(&std::fs::read_to_string(path).ok()?).ok()?;
    let hist = doc.get("training")?.get("hist_secs")?.as_f64()?;
    let batch = doc.get("selection")?.get("select_batch_secs")?.as_f64()?;
    Some((hist, batch))
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_PR2.json".into());
    let prov = mpcp_obs::provenance::Provenance::capture("perf_report", None);
    println!("{}", prov.header());

    // --- Training: 200 rounds on the bench grid dataset. ---
    let data = training_dataset(100); // 6000 rows, 4 features
    let (train, test) = split(&data);
    let params = |method| GbtParams { rounds: 200, tree_method: method, ..GbtParams::default() };

    println!("training 200-round Tweedie boosters on {} rows ({} held out)...",
        train.len(), test.len());
    let (exact_times, hist_times) = time_pair(
        9,
        || GbtModel::fit(&train, &params(TreeMethod::Exact)),
        || GbtModel::fit(&train, &params(TreeMethod::Hist)),
    );
    let (exact_secs, hist_secs) = (exact_times[4], hist_times[4]);
    let exact_model = GbtModel::fit(&train, &params(TreeMethod::Exact));
    let hist_model = GbtModel::fit(&train, &params(TreeMethod::Hist));
    let exact_dev = holdout_deviance(&exact_model, &test);
    let hist_dev = holdout_deviance(&hist_model, &test);
    let train_speedup = exact_secs / hist_secs;

    // --- Inference: looped select vs select_batch. ---
    println!("training the selector and timing batched selection...");
    let selector = trained_selector(&Learner::xgboost());
    let block: Vec<Instance> = (0..512)
        .map(|i| {
            Instance::new(
                Collective::Allreduce,
                1u64 << (4 + (i % 16)),
                2 + (i % 7) as u32,
                1 + (i % 8) as u32,
            )
        })
        .collect();
    let (loop_times, batch_times) = time_pair(
        25,
        || block.iter().map(|i| selector.select(i)).collect::<Vec<_>>(),
        || selector.select_batch(&block),
    );
    let (loop_secs, batch_secs) = (loop_times[0], batch_times[0]);
    let select_speedup = loop_secs / batch_secs;

    // Sanity: the two paths agree before their timings are compared.
    let batch = selector.select_batch(&block);
    for (i, inst) in block.iter().enumerate() {
        assert_eq!(selector.select(inst), batch[i], "batch/scalar disagreement at {i}");
    }

    // --- PR 6: raw SoA tree-kernel row rates (binned vs unbinned),
    // with the selector-level instance rates derived from the loop and
    // batch timings above — the section BENCH_PR6.json mirrors.
    println!("timing the flat tree kernels (binned vs unbinned SoA)...");
    let flat = hist_model.flat();
    let nfeat = train.nfeat();
    let kxs: Vec<f64> =
        (0..2048).flat_map(|i| train.row(i % train.len()).to_vec()).collect();
    let krows = kxs.len() / nfeat;
    let (binned_times, unbinned_times) = time_pair(
        25,
        || {
            let mut out = vec![0.0; krows];
            flat.predict_batch_into(&kxs, nfeat, &mut out);
            out
        },
        || {
            let mut out = vec![0.0; krows];
            flat.predict_batch_into_unbinned(&kxs, nfeat, &mut out);
            out
        },
    );
    let (binned_secs, unbinned_secs) = (binned_times[0], unbinned_times[0]);

    // --- PR 7: windowed-recorder cost. The serving hot path pays one
    // clock read plus one `WindowedHistogram::record` per request;
    // measure both so the serve-bench telemetry gate (QPS on >= 0.95x
    // off) has a microbenchmark to point at when it trips. ---
    println!("timing the rolling-window recorder...");
    let wh = mpcp_obs::window::WindowedHistogram::new(mpcp_obs::window::WindowConfig::default());
    let wclock = mpcp_obs::clock::Clock::wall();
    const WREC: usize = 1 << 20;
    let (clock_times, record_times) = time_pair(
        9,
        || {
            let mut acc = 0u64;
            for _ in 0..WREC {
                acc = acc.wrapping_add(wclock.now_ns());
            }
            acc
        },
        || {
            for i in 0..WREC {
                wh.record(wclock.now_ns(), (i & 0xffff) as u64);
            }
        },
    );
    let (clock_secs, record_secs) = (clock_times[4], record_times[4]);
    let t0 = Instant::now();
    let wsnap = std::hint::black_box(wh.snapshot(wclock.now_ns()));
    let snapshot_us = t0.elapsed().as_secs_f64() * 1e6;
    assert!(wsnap.count() > 0, "windowed recorder lost every sample");

    // --- PR 2: tracing overhead, disabled-path vs enabled-path. ---
    println!("measuring tracing overhead (enabled vs disabled paths)...");
    let (fit_off_times, fit_on_times) = time_pair(
        9,
        || GbtModel::fit(&train, &params(TreeMethod::Hist)),
        timed_traced(|| GbtModel::fit(&train, &params(TreeMethod::Hist))),
    );
    let (fit_off, fit_on) = (fit_off_times[4], fit_on_times[4]);
    let (sel_off_times, sel_on_times) = time_pair(
        25,
        || selector.select_batch(&block),
        timed_traced(|| selector.select_batch(&block)),
    );
    let (sel_off, sel_on) = (sel_off_times[0], sel_on_times[0]);
    let fit_overhead_pct = (fit_on / fit_off - 1.0) * 100.0;
    let sel_overhead_pct = (sel_on / sel_off - 1.0) * 100.0;

    // Regression check against the committed pre-instrumentation
    // baseline (meaningful only when BENCH_PR1.json came from this
    // machine; absent baseline passes vacuously).
    let pr1 = pr1_baseline("BENCH_PR1.json");
    let (pr1_json, disabled_within_2pct) = match pr1 {
        Some((pr1_hist, pr1_batch)) => {
            let train_ratio = hist_secs / pr1_hist;
            let select_ratio = batch_secs / pr1_batch;
            (
                format!(
                    r#"{{
      "pr1_hist_secs": {pr1_hist:.6},
      "pr1_select_batch_secs": {pr1_batch:.6e},
      "train_ratio": {train_ratio:.3},
      "select_ratio": {select_ratio:.3}
    }}"#
                ),
                train_ratio <= 1.02 && select_ratio <= 1.02,
            )
        }
        None => ("null".to_string(), true),
    };

    let json = format!(
        r#"{{
  "pr": 2,
  "provenance": {prov_json},
  "training": {{
    "dataset": "bench grid (training_dataset(100))",
    "rows_train": {rows_train},
    "rows_holdout": {rows_holdout},
    "rounds": 200,
    "objective": "tweedie(p=1.5)",
    "exact_secs": {exact_secs:.6},
    "hist_secs": {hist_secs:.6},
    "speedup": {train_speedup:.2},
    "holdout_tweedie_deviance": {{
      "exact": {exact_dev:.6e},
      "hist": {hist_dev:.6e}
    }}
  }},
  "selection": {{
    "learner": "XGBoost",
    "models": {models},
    "block_instances": {block_len},
    "select_loop_secs": {loop_secs:.6e},
    "select_batch_secs": {batch_secs:.6e},
    "single_query_latency_us": {single_us:.3},
    "batch_instances_per_sec": {batch_per_sec:.0},
    "throughput_ratio": {select_speedup:.2}
  }},
  "kernel": {{
    "layout": "SoA",
    "trees": 200,
    "block_rows": {krows},
    "binned_rows_per_sec": {binned_rps:.0},
    "unbinned_rows_per_sec": {unbinned_rps:.0},
    "binned_vs_unbinned": {bin_ratio:.2},
    "batch_insts_per_sec": {batch_per_sec:.0},
    "scalar_insts_per_sec": {scalar_per_sec:.0}
  }},
  "window_overhead": {{
    "records": {WREC},
    "clock_read_ns": {clock_ns:.1},
    "record_ns": {record_ns:.1},
    "records_per_sec": {records_per_sec:.0},
    "snapshot_us": {snapshot_us:.1}
  }},
  "tracing_overhead": {{
    "train_hist_secs_disabled": {fit_off:.6},
    "train_hist_secs_enabled": {fit_on:.6},
    "train_overhead_pct": {fit_overhead_pct:.2},
    "select_batch_secs_disabled": {sel_off:.6e},
    "select_batch_secs_enabled": {sel_on:.6e},
    "select_overhead_pct": {sel_overhead_pct:.2},
    "vs_pr1_baseline": {pr1_json}
  }},
  "gates": {{
    "training_speedup_ge_3x": {gate_train},
    "hist_deviance_le_exact": {gate_dev},
    "batch_select_ge_1_1x": {gate_batch},
    "disabled_path_within_2pct_of_pr1": {disabled_within_2pct}
  }}
}}
"#,
        prov_json = prov.to_json(),
        clock_ns = clock_secs / WREC as f64 * 1e9,
        record_ns = (record_secs - clock_secs).max(0.0) / WREC as f64 * 1e9,
        records_per_sec = WREC as f64 / record_secs,
        rows_train = train.len(),
        rows_holdout = test.len(),
        single_us = loop_secs / block.len() as f64 * 1e6,
        batch_per_sec = block.len() as f64 / batch_secs,
        scalar_per_sec = block.len() as f64 / loop_secs,
        binned_rps = krows as f64 / binned_secs,
        unbinned_rps = krows as f64 / unbinned_secs,
        bin_ratio = unbinned_secs / binned_secs,
        models = selector.model_count(),
        block_len = block.len(),
        gate_train = train_speedup >= 3.0,
        gate_dev = hist_dev <= exact_dev * (1.0 + 1e-9) + 1e-12,
        gate_batch = select_speedup >= 1.1,
    );
    std::fs::write(&out_path, &json).expect("write perf report JSON");

    println!();
    println!("| metric                        | exact/loop | hist/batch | ratio |");
    println!("|-------------------------------|-----------:|-----------:|------:|");
    println!(
        "| GBT fit, 200 rounds (s)       | {exact_secs:>10.3} | {hist_secs:>10.3} | {train_speedup:>4.1}x |"
    );
    println!(
        "| held-out Tweedie deviance     | {exact_dev:>10.3e} | {hist_dev:>10.3e} |     - |"
    );
    println!(
        "| select 512 instances (s)      | {loop_secs:>10.3e} | {batch_secs:>10.3e} | {select_speedup:>4.1}x |"
    );
    println!();
    println!(
        "SoA kernel: {:.2e} rows/s binned, {:.2e} rows/s unbinned ({:.2}x)",
        krows as f64 / binned_secs,
        krows as f64 / unbinned_secs,
        unbinned_secs / binned_secs,
    );
    println!(
        "tracing overhead: fit {fit_overhead_pct:+.1}% ({fit_off:.3}s -> {fit_on:.3}s), \
         select_batch {sel_overhead_pct:+.1}% ({sel_off:.2e}s -> {sel_on:.2e}s)"
    );
    println!(
        "windowed recorder: {:.0} records/s ({:.1}ns/record past the {:.1}ns clock read), \
         snapshot {snapshot_us:.1}us",
        WREC as f64 / record_secs,
        (record_secs - clock_secs).max(0.0) / WREC as f64 * 1e9,
        clock_secs / WREC as f64 * 1e9,
    );
    println!("wrote {out_path}");
    let ok = train_speedup >= 3.0
        && hist_dev <= exact_dev * (1.0 + 1e-9) + 1e-12
        && select_speedup >= 1.1;
    if ok {
        println!("all acceptance gates PASS");
    } else {
        println!("acceptance gate FAILURE (see gates in {out_path})");
        std::process::exit(1);
    }
}
