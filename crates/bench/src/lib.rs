//! Shared fixtures for the Criterion benchmark harness.
//!
//! The paper-scale experiment regeneration lives in `mpcp-experiments`
//! binaries; these benches measure the *performance of the pipeline
//! stages themselves*: simulator event rate, schedule construction,
//! benchmark-grid throughput, learner training time, and — relevant to
//! the paper's offline/online discussion in Section II — the prediction
//! latency of a trained selector.

#![forbid(unsafe_code)]

use mpcp_benchmark::{BenchConfig, DatasetSpec, LibKind};
use mpcp_collectives::Collective;
use mpcp_core::Selector;
use mpcp_ml::{Dataset, Learner};
use mpcp_simnet::Machine;

/// A small but non-trivial dataset spec shared by benches.
pub fn bench_spec() -> DatasetSpec {
    DatasetSpec {
        id: "bench",
        coll: Collective::Allreduce,
        lib: LibKind::OpenMpi,
        machine: Machine::hydra(),
        nodes: vec![2, 4, 8],
        ppn: vec![1, 4, 8],
        msizes: vec![16, 1 << 10, 16 << 10, 256 << 10],
        seed: 0xBE7C,
    }
}

/// Generate the shared benchmark dataset records.
pub fn bench_records(
) -> (DatasetSpec, mpcp_collectives::MpiLibrary, Vec<mpcp_benchmark::Record>) {
    let spec = bench_spec();
    let lib = spec.library(None);
    let data = spec.generate(&lib, &BenchConfig::quick());
    (spec, lib, data.records)
}

/// Train a selector on the shared dataset with the given learner.
pub fn trained_selector(learner: &Learner) -> Selector {
    let (spec, lib, records) = bench_records();
    Selector::train(learner, &records, lib.configs(spec.coll)).expect("training failed")
}

/// A runtime-surface regression dataset for learner-training benches.
pub fn training_dataset(n_per_cell: usize) -> Dataset {
    let mut d = Dataset::new(4);
    for mi in 0..10 {
        let m = (1u64 << (2 * mi)) as f64;
        for p in [4.0f64, 8.0, 16.0, 32.0, 64.0, 128.0] {
            for k in 0..n_per_cell {
                let jitter = 1.0 + 0.01 * (k as f64);
                d.push(
                    &[m.ln(), p / 4.0, 4.0, p],
                    (5.0 + 0.02 * m / p + 3.0 * p.ln()) * jitter,
                );
            }
        }
    }
    d
}
