//! Property tests for the lexer's total-function guarantees (see the
//! module docs in `lexer.rs`): on arbitrary input, lexing never panics,
//! token spans tile the source exactly (in bounds, non-empty, strictly
//! ascending, non-overlapping, with whitespace as the only gap
//! material), and the line table round-trips every token offset.
//!
//! Two generators: uniform ASCII soup (anything goes, including control
//! bytes and unterminated quotes), and a fragment mix biased toward the
//! constructs the lexer has to get right — raw strings, nested block
//! comments, lifetimes vs char literals.

use mpcp_lint::lexer::lex;
use proptest::prelude::*;

/// Uniform ASCII, control characters included.
fn ascii_soup() -> impl Strategy<Value = String> {
    prop::collection::vec(0u32..127, 0..400)
        .prop_map(|v| v.into_iter().map(|c| c as u8 as char).collect())
}

/// Concatenations of the lexer's hard cases, glued in random order so
/// quotes and comment openers collide in unplanned ways.
fn fragment_mix() -> impl Strategy<Value = String> {
    let frag = prop::sample::select(vec![
        "fn ", "unsafe ", "'a", "'a'", "'\\n'", "\"", "\"str\"", "r\"raw\"", "r#\"#\"#",
        "r##\"x\"##", "b\"bytes\"", "br#\"b\"#", "b'q'", "/*", "*/", "/* /* nested */ */",
        "//", "// line\n", "/// doc\n", "1.5", "1e9", "0x_ff", "1_000u64", "..", "::", "=>",
        "->", "<=", "&&", "\\", "\n", "\t", "{", "}", "(", ")", "#![forbid(unsafe_code)]\n",
        ".partial_cmp(", "\u{7f}",
    ]);
    prop::collection::vec(frag, 0..40).prop_map(|v| v.concat())
}

/// The span/tiling invariants, asserted for any input string.
fn check_invariants(src: &str) -> Result<(), TestCaseError> {
    let lexed = lex(src);
    let n = src.len();
    let mut covered = vec![false; n];
    let mut prev_end = 0usize;
    for t in &lexed.toks {
        prop_assert!(t.start < t.end, "empty span {t:?}");
        prop_assert!(t.end <= n, "span {t:?} out of bounds (len {n})");
        prop_assert!(t.start >= prev_end, "overlapping/retrograde span {t:?}");
        for c in covered.iter_mut().take(t.end).skip(t.start) {
            *c = true;
        }
        prev_end = t.end;

        // Line-table round trip: (line, col) is 1-based, the line's
        // start is at or before the offset, and col measures exactly
        // the distance from that start.
        let (line, col) = lexed.line_col(t.start);
        prop_assert!(line >= 1 && (line as usize) <= lexed.num_lines());
        prop_assert!(col >= 1);
        let ls = lexed.line_start(line);
        prop_assert!(ls <= t.start);
        prop_assert_eq!(ls + col as usize - 1, t.start);
        // The reported line text must actually contain the offset.
        let text = lexed.line_text(src, t.start);
        prop_assert!(t.start - ls <= text.len() + 1, "offset past its own line text");
    }
    // Whitespace is the only gap material: every uncovered byte is one
    // of the four characters the lexer skips.
    for (i, c) in covered.iter().enumerate() {
        if !*c {
            let byte = src.as_bytes()[i];
            prop_assert!(
                matches!(byte, b' ' | b'\t' | b'\r' | b'\n'),
                "byte {byte:#x} at offset {i} neither tokenized nor whitespace"
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn lexing_ascii_soup_never_panics_and_tiles_the_input(src in ascii_soup()) {
        check_invariants(&src)?;
    }

    #[test]
    fn lexing_fragment_mixes_never_panics_and_tiles_the_input(src in fragment_mix()) {
        check_invariants(&src)?;
    }
}

#[test]
fn empty_and_whitespace_only_inputs_lex_to_zero_tokens() {
    for src in ["", " ", "\n\n\n", "\t \r\n"] {
        let lexed = lex(src);
        assert!(lexed.toks.is_empty(), "{src:?}");
        assert!(lexed.num_lines() >= 1);
    }
}
