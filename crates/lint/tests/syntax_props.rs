//! Property tests for the structural layer's total-function guarantees
//! (see the module docs in `syntax.rs`): on arbitrary input, parsing
//! never panics, every code token is assigned to exactly one block
//! whose span contains it, block spans nest properly through parent
//! links, and delimiter matching is an involution on whatever it
//! matches.
//!
//! The generators mirror `lexer_props`: uniform ASCII soup, plus a
//! fragment mix biased toward the constructs the block/let recovery has
//! to survive — unbalanced braces, closures, `let` chains, match arms.

use mpcp_lint::syntax::Syntax;
use mpcp_lint::SourceFile;
use proptest::prelude::*;

/// Uniform ASCII, control characters included.
fn ascii_soup() -> impl Strategy<Value = String> {
    prop::collection::vec(0u32..127, 0..400)
        .prop_map(|v| v.into_iter().map(|c| c as u8 as char).collect())
}

/// Concatenations of the parser's hard cases, glued in random order so
/// braces, closures, and statement boundaries collide in unplanned
/// ways.
fn fragment_mix() -> impl Strategy<Value = String> {
    let frag = prop::sample::select(vec![
        "fn f() {", "fn g();", "}", "{", "}}", "{{", "let x = 1;", "let mut y = a.lock();",
        "let (a, b) = t;", "let Some(v) = o else { return };", "|x| x + 1", "move || {",
        "|| y", "match m {", "Ok(_) => {}", "=> {", "impl T for U {", "struct S;",
        "if a < b {", "while let Some(q) = it.next() {", "for i in 0..n {", "unsafe {",
        "loop {", "else {", "-> u64 {", "::<Vec<u8>>", "\"{ not a brace }\"",
        "// { comment brace\n", "/* } */", "r#\"{{\"#", ";", "(", ")", "[", "]", "'a",
        "drop(guard);", "m.lock().unwrap();", "\n",
    ]);
    prop::collection::vec(frag, 0..40).prop_map(|v| v.concat())
}

/// The structural invariants, asserted for any input string.
fn check_invariants(src: &str) -> Result<(), TestCaseError> {
    let file = SourceFile::new("crates/x/src/soup.rs", src);
    let syn = Syntax::parse(&file);

    // Every code token is assigned to exactly one valid block.
    prop_assert_eq!(syn.block_of.len(), syn.code.len());
    for (k, &b) in syn.block_of.iter().enumerate() {
        prop_assert!(b < syn.blocks.len(), "token {k} assigned to missing block {b}");
        let blk = &syn.blocks[b];
        // The token must sit inside its block's span.
        if let Some(open) = blk.open {
            prop_assert!(k >= open, "token {k} before its block's open {open}");
        }
        if let Some(close) = blk.close {
            prop_assert!(k <= close, "token {k} after its block's close {close}");
        }
    }

    // Block tree shape: root is the only parentless block, every
    // other block's parent id is smaller (blocks are created in open
    // order), and child spans nest inside parent spans.
    prop_assert!(!syn.blocks.is_empty());
    prop_assert!(syn.blocks[0].open.is_none() && syn.blocks[0].parent.is_none());
    for (id, blk) in syn.blocks.iter().enumerate().skip(1) {
        let Some(parent) = blk.parent else {
            prop_assert!(false, "non-root block {id} has no parent");
            continue;
        };
        prop_assert!(parent < id, "parent {parent} not created before child {id}");
        let open = blk.open.unwrap_or(0);
        if let Some(close) = blk.close {
            prop_assert!(open < close, "block {id} closes before it opens");
        }
        let p = &syn.blocks[parent];
        if let (Some(po), Some(_)) = (p.open, blk.open) {
            prop_assert!(po < open, "child {id} opens before parent {parent}");
        }
        if let (Some(pc), Some(cc)) = (p.close, blk.close) {
            prop_assert!(cc < pc, "child {id} closes after parent {parent}");
        }
    }

    // Let bindings point at real tokens in their recorded order.
    for lb in &syn.lets {
        prop_assert!(lb.name_ci < syn.code.len());
        prop_assert!(lb.init_start > lb.name_ci);
        if let Some(semi) = lb.semi {
            prop_assert!(semi >= lb.init_start, "init after its terminating `;`");
            prop_assert!(semi < syn.code.len());
        }
        prop_assert!(lb.block < syn.blocks.len());
        prop_assert!(!lb.name.is_empty());
    }

    // Delimiter matching: whatever it matches is the same kind of
    // closer, after the opener.
    let toks = &file.lexed.toks;
    for k in 0..syn.code.len() {
        let t = file.tok_text(&toks[syn.code[k]]);
        if matches!(t, "(" | "[" | "{") {
            if let Some(c) = syn.matching_close(&file, k) {
                prop_assert!(c > k);
                let ct = file.tok_text(&toks[syn.code[c]]);
                let expect = match t {
                    "(" => ")",
                    "[" => "]",
                    _ => "}",
                };
                prop_assert_eq!(ct, expect);
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn parsing_ascii_soup_never_panics_and_assigns_every_token(src in ascii_soup()) {
        check_invariants(&src)?;
    }

    #[test]
    fn parsing_fragment_mixes_never_panics_and_assigns_every_token(src in fragment_mix()) {
        check_invariants(&src)?;
    }
}

#[test]
fn realistic_item_recovers_fns_lets_and_closure_blocks() {
    let src = r#"
impl Server {
    fn run(&self) {
        let guard = self.state.lock().unwrap();
        let n = guard.len();
        drop(guard);
        let worker = std::thread::spawn(move || {
            let inner = 1;
            inner + n
        });
        let _ = worker;
    }
}
"#;
    let file = SourceFile::new("crates/x/src/server.rs", src);
    let syn = Syntax::parse(&file);
    assert!(syn.fns.iter().any(|f| f.name == "run" && f.body.is_some()));
    let names: Vec<&str> = syn.lets.iter().map(|l| l.name.as_str()).collect();
    assert!(names.contains(&"guard") && names.contains(&"n") && names.contains(&"worker"));
    assert!(
        syn.blocks.iter().any(|b| b.closure),
        "the spawn closure body must be flagged as a closure block"
    );
    // The guard binding's drop scope is the fn body, not the closure.
    let guard = syn.lets.iter().find(|l| l.name == "guard").unwrap();
    assert!(!syn.blocks[guard.block].closure);
}
