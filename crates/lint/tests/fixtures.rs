//! Fixture-driven integration tests: every rule fires on its seeded
//! `bad.rs` fixture (with correct positions) and stays silent on the
//! `good.rs` fixture full of token-level traps (comments, strings, test
//! code). The final tests run the real binary end to end and prove the
//! current workspace lints clean with the checked-in `lint.toml`.

use std::path::{Path, PathBuf};
use std::process::Command;

use mpcp_lint::config::Config;
use mpcp_lint::{lint_files, lint_workspace, Finding, SourceFile};

fn fixture_text(rule: &str, which: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(rule)
        .join(format!("{which}.rs"));
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()))
}

/// Lint a single fixture as if it lived at `rel_path`, with defaults.
fn lint_fixture(rel_path: &str, text: &str) -> Vec<Finding> {
    let files = vec![SourceFile::new(rel_path, text)];
    lint_files(&files, &Config::default()).findings
}

fn of_rule<'a>(findings: &'a [Finding], rule: &str) -> Vec<&'a Finding> {
    findings.iter().filter(|f| f.rule == rule).collect()
}

// -------------------------------------------------------------------
// no-float-partial-order
// -------------------------------------------------------------------

#[test]
fn float_partial_order_fires_on_bad_fixture() {
    let text = fixture_text("no-float-partial-order", "bad");
    let findings = lint_fixture("crates/core/src/bad.rs", &text);
    let hits = of_rule(&findings, "no-float-partial-order");
    // `.partial_cmp(`, raw `<` in a sort_by comparator, `::partial_cmp`.
    assert_eq!(hits.len(), 3, "findings: {hits:?}");
    assert!(hits.iter().any(|f| f.line == 3), "method-call form at line 3");
    assert!(hits.iter().any(|f| f.line == 8), "raw operator at line 8");
    assert!(hits.iter().any(|f| f.line == 12), "path form at line 12");
    for f in &hits {
        assert!(f.col >= 1 && !f.line_text.is_empty());
    }
}

#[test]
fn float_partial_order_silent_on_good_fixture() {
    let text = fixture_text("no-float-partial-order", "good");
    let findings = lint_fixture("crates/core/src/good.rs", &text);
    // No rule at all may fire: `partial_cmp` in comments/strings, a
    // PartialOrd *impl*, and `<` inside a raw string are all clean.
    assert!(findings.is_empty(), "false positives: {findings:?}");
}

// -------------------------------------------------------------------
// no-panic-paths
// -------------------------------------------------------------------

#[test]
fn panic_paths_fires_on_bad_fixture() {
    let text = fixture_text("no-panic-paths", "bad");
    let findings = lint_fixture("crates/ml/src/bad.rs", &text);
    let hits = of_rule(&findings, "no-panic-paths");
    // .unwrap(), .expect(), panic!, todo!, unimplemented!, unreachable!.
    assert_eq!(hits.len(), 6, "findings: {hits:?}");
    assert!(hits.iter().any(|f| f.line == 3 && f.message.contains("unwrap")));
    assert!(hits.iter().any(|f| f.line == 7 && f.message.contains("expect")));
    assert!(hits.iter().any(|f| f.message.contains("panic!")));
}

#[test]
fn panic_paths_silent_on_good_fixture() {
    let text = fixture_text("no-panic-paths", "good");
    let findings = lint_fixture("crates/ml/src/good.rs", &text);
    // unwrap_or* idents, strings, comments, and #[cfg(test)] code.
    assert!(findings.is_empty(), "false positives: {findings:?}");
}

#[test]
fn panic_paths_out_of_scope_crates_are_ignored() {
    let text = fixture_text("no-panic-paths", "bad");
    // simnet is not a panic-policed crate; the rule must not fire.
    let findings = lint_fixture("crates/simnet/src/bad.rs", &text);
    assert!(of_rule(&findings, "no-panic-paths").is_empty());
}

// -------------------------------------------------------------------
// safety-comment-required
// -------------------------------------------------------------------

#[test]
fn safety_comment_fires_on_bad_fixture() {
    let text = fixture_text("safety-comment-required", "bad");
    let findings = lint_fixture("crates/ml/src/bad.rs", &text);
    let hits = of_rule(&findings, "safety-comment-required");
    assert_eq!(hits.len(), 1, "findings: {hits:?}");
    assert!(hits[0].message.contains("SAFETY:"));
    assert_eq!(hits[0].line, 7, "the unsafe block, not the decoy string");
}

#[test]
fn safety_comment_silent_on_good_fixture() {
    let text = fixture_text("safety-comment-required", "good");
    let findings = lint_fixture("crates/ml/src/good.rs", &text);
    assert!(findings.is_empty(), "false positives: {findings:?}");
}

#[test]
fn unsafe_outside_allowlisted_crate_is_flagged() {
    // Even a justified unsafe block is a violation outside `ml`.
    let text = fixture_text("safety-comment-required", "good");
    let findings = lint_fixture("crates/core/src/good.rs", &text);
    let hits = of_rule(&findings, "safety-comment-required");
    assert_eq!(hits.len(), 1, "findings: {hits:?}");
    assert!(hits[0].message.contains("outside"));
}

// -------------------------------------------------------------------
// no-wallclock-in-deterministic
// -------------------------------------------------------------------

#[test]
fn wallclock_fires_on_bad_fixture() {
    let text = fixture_text("no-wallclock-in-deterministic", "bad");
    let findings = lint_fixture("crates/simnet/src/bad.rs", &text);
    let hits = of_rule(&findings, "no-wallclock-in-deterministic");
    // Instant ×2, SystemTime ×2 (use + call sites), available_parallelism.
    assert_eq!(hits.len(), 5, "findings: {hits:?}");
    assert!(hits.iter().any(|f| f.line == 6 && f.message.contains("Instant")));
    assert!(hits.iter().any(|f| f.message.contains("available_parallelism")));
}

#[test]
fn wallclock_silent_on_good_fixture() {
    let text = fixture_text("no-wallclock-in-deterministic", "good");
    let findings = lint_fixture("crates/simnet/src/good.rs", &text);
    assert!(findings.is_empty(), "false positives: {findings:?}");
}

#[test]
fn wallclock_out_of_scope_crates_are_ignored() {
    let text = fixture_text("no-wallclock-in-deterministic", "bad");
    // obs is the one place timing is allowed to live.
    let findings = lint_fixture("crates/obs/src/bad.rs", &text);
    assert!(of_rule(&findings, "no-wallclock-in-deterministic").is_empty());
}

// -------------------------------------------------------------------
// no-lossy-cast
// -------------------------------------------------------------------

#[test]
fn lossy_cast_fires_on_bad_fixture() {
    let text = fixture_text("no-lossy-cast", "bad");
    let findings = lint_fixture("crates/core/src/selector.rs", &text);
    let hits = of_rule(&findings, "no-lossy-cast");
    // uid as u32, msize as u32, weight as f32, reps as u8.
    assert_eq!(hits.len(), 4, "findings: {hits:?}");
    assert!(hits.iter().filter(|f| f.line == 3).count() == 3);
    assert!(hits.iter().any(|f| f.line == 7 && f.message.contains("u8")));
}

#[test]
fn lossy_cast_silent_on_good_fixture() {
    let text = fixture_text("no-lossy-cast", "good");
    let findings = lint_fixture("crates/core/src/selector.rs", &text);
    assert!(findings.is_empty(), "false positives: {findings:?}");
}

#[test]
fn lossy_cast_out_of_scope_files_are_ignored() {
    let text = fixture_text("no-lossy-cast", "bad");
    // Non-serialization files may cast (clippy still watches them).
    let findings = lint_fixture("crates/ml/src/gbt.rs", &text);
    assert!(of_rule(&findings, "no-lossy-cast").is_empty());
}

// -------------------------------------------------------------------
// ordering-comment-required
// -------------------------------------------------------------------

#[test]
fn ordering_comment_fires_on_bad_fixture() {
    let text = fixture_text("ordering-comment-required", "bad");
    // Lint as one of the lock-free modules the rule defaults to.
    let findings = lint_fixture("crates/obs/src/window.rs", &text);
    let hits = of_rule(&findings, "ordering-comment-required");
    // Relaxed store, Release store, Acquire load — none justified.
    assert_eq!(hits.len(), 3, "findings: {hits:?}");
    assert!(hits.iter().any(|f| f.line == 4 && f.message.contains("Relaxed")));
    assert!(hits.iter().any(|f| f.line == 6 && f.message.contains("Release")));
    assert!(hits.iter().any(|f| f.line == 10 && f.message.contains("Acquire")));
    for f in &hits {
        // The caret points at the `Ordering` token itself.
        let at = f.line_text.find("Ordering").expect("line shows the site") as u32;
        assert_eq!(f.col, at + 1, "finding: {f:?}");
    }
}

#[test]
fn ordering_comment_silent_on_good_fixture() {
    let text = fixture_text("ordering-comment-required", "good");
    // Same-line tags, a comment above a cluster, a struct-literal
    // snapshot, orderings in strings/comments, and test code.
    let findings = lint_fixture("crates/obs/src/window.rs", &text);
    assert!(findings.is_empty(), "false positives: {findings:?}");
}

#[test]
fn ordering_comment_out_of_scope_files_are_ignored() {
    let text = fixture_text("ordering-comment-required", "bad");
    // Only the hand-rolled lock-free modules are in the default scope.
    let findings = lint_fixture("crates/core/src/selector.rs", &text);
    assert!(of_rule(&findings, "ordering-comment-required").is_empty());
}

// -------------------------------------------------------------------
// no-relaxed-publish
// -------------------------------------------------------------------

#[test]
fn relaxed_publish_fires_on_bad_fixture() {
    let text = fixture_text("no-relaxed-publish", "bad");
    let findings = lint_fixture("crates/serve/src/epochs.rs", &text);
    let hits = of_rule(&findings, "no-relaxed-publish");
    // A Relaxed store to `seq` and a Relaxed RMW to `epoch`.
    assert_eq!(hits.len(), 2, "findings: {hits:?}");
    assert!(hits.iter().any(|f| f.line == 10 && f.message.contains("`seq.store`")));
    assert!(hits.iter().any(|f| f.line == 11 && f.message.contains("`epoch.fetch_add`")));
    for f in &hits {
        assert!(f.message.contains("publish word"), "finding: {f:?}");
    }
}

#[test]
fn relaxed_publish_silent_on_good_fixture() {
    let text = fixture_text("no-relaxed-publish", "good");
    // Release publishes, a Relaxed plain counter, Relaxed loads, a
    // string decoy, and test code.
    let findings = lint_fixture("crates/serve/src/epochs.rs", &text);
    assert!(findings.is_empty(), "false positives: {findings:?}");
}

// -------------------------------------------------------------------
// no-lock-across-blocking
// -------------------------------------------------------------------

#[test]
fn lock_across_blocking_fires_on_bad_fixture() {
    let text = fixture_text("no-lock-across-blocking", "bad");
    let findings = lint_fixture("crates/serve/src/daemon.rs", &text);
    let hits = of_rule(&findings, "no-lock-across-blocking");
    // A guard live across write_all, and one across join.
    assert_eq!(hits.len(), 2, "findings: {hits:?}");
    assert!(
        hits.iter().any(|f| f.line == 9
            && f.message.contains("guard `guard`")
            && f.message.contains("write_all")),
        "findings: {hits:?}"
    );
    assert!(
        hits.iter().any(|f| f.line == 16
            && f.message.contains("guard `handles`")
            && f.message.contains("join")),
        "findings: {hits:?}"
    );
    for f in &hits {
        assert!(f.col >= 1 && !f.line_text.is_empty());
    }
}

#[test]
fn lock_across_blocking_silent_on_good_fixture() {
    let text = fixture_text("no-lock-across-blocking", "good");
    // drop() before I/O, an inner scope, a condvar hand-off, a closure
    // that defers the I/O, and decoy calls in strings/comments.
    let findings = lint_fixture("crates/serve/src/daemon.rs", &text);
    assert!(findings.is_empty(), "false positives: {findings:?}");
}

#[test]
fn lock_across_blocking_out_of_scope_crates_are_ignored() {
    let text = fixture_text("no-lock-across-blocking", "bad");
    // The rule polices the concurrent serving/observability crates.
    let findings = lint_fixture("crates/core/src/daemon.rs", &text);
    assert!(of_rule(&findings, "no-lock-across-blocking").is_empty());
}

// -------------------------------------------------------------------
// Allowlist semantics
// -------------------------------------------------------------------

#[test]
fn allowlist_downgrades_matching_findings_and_reports_stale_entries() {
    let toml = r#"
[[allow]]
rule = "no-panic-paths"
path = "crates/ml/src/bad.rs"
contains = "x.unwrap()"
reason = "fixture: exercised by the allowlist test"

[[allow]]
rule = "no-panic-paths"
path = "crates/ml/src/never_exists.rs"
reason = "stale entry that must surface as unused"
"#;
    let cfg = Config::parse(toml).expect("valid config");
    let text = fixture_text("no-panic-paths", "bad");
    let files = vec![SourceFile::new("crates/ml/src/bad.rs", text)];
    let rep = lint_files(&files, &cfg);
    let allowed: Vec<_> = rep.findings.iter().filter(|f| f.allowed.is_some()).collect();
    assert_eq!(allowed.len(), 1);
    assert!(allowed[0].line_text.contains("x.unwrap()"));
    assert_eq!(rep.violation_count(), rep.findings.len() - 1);
    assert_eq!(rep.unused_allows.len(), 1);
    assert_eq!(rep.unused_allows[0].path, "crates/ml/src/never_exists.rs");
}

// -------------------------------------------------------------------
// Whole-workspace checks
// -------------------------------------------------------------------

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().unwrap()
}

/// Acceptance criterion: zero false positives on the current tree. A
/// new finding here is either a real regression to fix or a new
/// justified `[[allow]]` entry in lint.toml — never a reason to loosen
/// a rule.
#[test]
fn current_workspace_lints_clean_with_checked_in_config() {
    let root = workspace_root();
    let toml = std::fs::read_to_string(root.join("lint.toml")).expect("lint.toml");
    let cfg = Config::parse(&toml).expect("lint.toml parses");
    let rep = lint_workspace(&root, &cfg).expect("workspace walk");
    let violations: Vec<_> = rep.violations().collect();
    assert!(violations.is_empty(), "workspace violations: {violations:#?}");
    assert!(
        rep.unused_allows.is_empty(),
        "stale lint.toml entries: {:#?}",
        rep.unused_allows
    );
    assert!(rep.files_checked > 50, "workspace walk looks truncated");
}

// -------------------------------------------------------------------
// Binary end to end (covers the --fix-allowlist bugfix satellite)
// -------------------------------------------------------------------

fn seed_temp_workspace(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("mpcp-lint-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(root.join("crates/core/src")).unwrap();
    std::fs::write(root.join("Cargo.toml"), "[workspace]\n").unwrap();
    std::fs::write(
        root.join("crates/core/src/picker.rs"),
        "pub fn pick(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
    )
    .unwrap();
    root
}

fn run_lint(root: &Path, extra: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_mpcp-lint"))
        .arg("check")
        .arg("--root")
        .arg(root)
        .args(extra)
        .output()
        .expect("spawn mpcp-lint");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn binary_fails_with_file_line_diagnostics_on_seeded_violation() {
    let root = seed_temp_workspace("diag");
    let (code, stdout, stderr) = run_lint(&root, &[]);
    assert_eq!(code, 1, "stdout: {stdout}\nstderr: {stderr}");
    assert!(
        stdout.contains("crates/core/src/picker.rs:2:7"),
        "diagnostic must carry file:line:col, got:\n{stdout}"
    );
    assert!(stdout.contains("x.unwrap()"), "diagnostic shows the source line");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn binary_writes_json_report() {
    let root = seed_temp_workspace("json");
    let json_path = root.join("lint-report.json");
    let (code, _, _) = run_lint(&root, &["--json", json_path.to_str().unwrap()]);
    assert_eq!(code, 1);
    let json = std::fs::read_to_string(&json_path).expect("json report written");
    assert!(json.contains("\"rule\": \"no-panic-paths\""));
    assert!(json.contains("\"path\": \"crates/core/src/picker.rs\""));
    assert!(json.contains("\"violations\": 1"));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn fix_allowlist_stanza_round_trips_to_clean_exit() {
    let root = seed_temp_workspace("fix");
    // 1. `--fix-allowlist` emits a ready-to-paste stanza for the finding.
    let (code, stanza, _) = run_lint(&root, &["--fix-allowlist"]);
    assert_eq!(code, 0, "--fix-allowlist itself must not fail the build");
    assert!(stanza.contains("[[allow]]"), "stanza:\n{stanza}");
    assert!(stanza.contains("rule = \"no-panic-paths\""));
    assert!(stanza.contains("path = \"crates/core/src/picker.rs\""));
    assert!(stanza.contains("reason = \"TODO:"), "stanza prompts for a justification");
    // 2. Paste it into lint.toml (filling in the reason) and re-check.
    let filled = stanza.replace("TODO: one-line justification", "e2e: accepted for the test");
    std::fs::write(root.join("lint.toml"), filled).unwrap();
    let (code, stdout, stderr) = run_lint(&root, &[]);
    assert_eq!(code, 0, "allowlisted finding must pass\nstdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("0 violation(s)"), "stdout: {stdout}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn binary_writes_sarif_report() {
    let root = seed_temp_workspace("sarif");
    let sarif_path = root.join("lint.sarif");
    let (code, _, _) = run_lint(&root, &["--sarif", sarif_path.to_str().unwrap()]);
    assert_eq!(code, 1, "the seeded violation still fails the run");
    let sarif = std::fs::read_to_string(&sarif_path).expect("sarif report written");
    assert!(sarif.contains("\"version\": \"2.1.0\""), "{sarif}");
    assert!(sarif.contains("\"ruleId\": \"no-panic-paths\""), "{sarif}");
    assert!(sarif.contains("\"uri\": \"crates/core/src/picker.rs\""), "{sarif}");
    assert!(sarif.contains("\"startLine\": 2"), "{sarif}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn deny_unused_allows_turns_stale_entries_into_failures() {
    let root = seed_temp_workspace("stale");
    std::fs::write(
        root.join("lint.toml"),
        r#"
[[allow]]
rule = "no-panic-paths"
path = "crates/core/src/picker.rs"
contains = "x.unwrap()"
reason = "e2e: accepted for the test"

[[allow]]
rule = "no-panic-paths"
path = "crates/core/src/deleted_long_ago.rs"
reason = "stale: the file it excused is gone"
"#,
    )
    .unwrap();
    // Without the flag the stale entry is only a warning.
    let (code, stdout, _) = run_lint(&root, &[]);
    assert_eq!(code, 0, "stdout: {stdout}");
    assert!(stdout.contains("unused-allow"), "stdout: {stdout}");
    // With it, CI can insist the allowlist carries no dead weight.
    let (code, stdout, _) = run_lint(&root, &["--deny-unused-allows"]);
    assert_eq!(code, 1, "stdout: {stdout}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn fix_allowlist_dedups_against_directory_prefix_entries() {
    let root = seed_temp_workspace("dedup");
    // A dir-prefix entry whose `contains` misses the unwrap line: the
    // finding stays a violation, but --fix-allowlist must point at the
    // existing entry instead of pasting a twin stanza blindly.
    std::fs::write(
        root.join("lint.toml"),
        r#"
[[allow]]
rule = "no-panic-paths"
path = "crates/core/src/"
contains = "some_other_line()"
reason = "e2e: near-miss entry the emitter should point at"
"#,
    )
    .unwrap();
    let (code, stanza, _) = run_lint(&root, &["--fix-allowlist"]);
    assert_eq!(code, 0, "stanza:\n{stanza}");
    assert!(stanza.contains("widen its `contains`"), "stanza:\n{stanza}");

    // Widened to cover the line, the emitter has nothing left to say.
    std::fs::write(
        root.join("lint.toml"),
        r#"
[[allow]]
rule = "no-panic-paths"
path = "crates/core/src/"
contains = "x.unwrap()"
reason = "e2e: now covers the finding"
"#,
    )
    .unwrap();
    let (code, stanza, _) = run_lint(&root, &["--fix-allowlist"]);
    assert_eq!(code, 0, "stanza:\n{stanza}");
    assert!(stanza.contains("nothing to triage"), "stanza:\n{stanza}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn allow_entry_without_reason_is_a_config_error() {
    let root = seed_temp_workspace("noreason");
    std::fs::write(
        root.join("lint.toml"),
        "[[allow]]\nrule = \"no-panic-paths\"\npath = \"crates/core/src/picker.rs\"\n",
    )
    .unwrap();
    let (code, _, stderr) = run_lint(&root, &[]);
    assert_eq!(code, 2, "missing reason is a config error, not a lint pass");
    assert!(stderr.contains("reason"), "stderr: {stderr}");
    let _ = std::fs::remove_dir_all(&root);
}
