use std::io::Write;
use std::net::TcpStream;
use std::sync::{Condvar, Mutex};

pub fn drop_then_write(m: &Mutex<Vec<u8>>, stream: &mut TcpStream) -> std::io::Result<()> {
    let guard = m.lock().unwrap();
    let first = guard.first().copied().unwrap_or(0);
    drop(guard);
    stream.write_all(&[first])?;
    Ok(())
}

pub fn scoped_then_write(m: &Mutex<Vec<u8>>, stream: &mut TcpStream) -> std::io::Result<()> {
    let first = {
        let guard = m.lock().unwrap();
        guard.first().copied().unwrap_or(0)
    };
    stream.write_all(&[first])?;
    Ok(())
}

pub fn condvar_handoff(m: &Mutex<bool>, cv: &Condvar) {
    let mut ready = m.lock().unwrap();
    while !*ready {
        ready = cv.wait(ready).unwrap();
    }
}

pub fn closure_defers_io(m: &Mutex<Vec<u8>>) -> impl FnOnce(&mut TcpStream) {
    let guard = m.lock().unwrap();
    let first = guard.first().copied().unwrap_or(0);
    move |stream: &mut TcpStream| {
        let _ = stream.write_all(&[first]);
    }
}

pub fn decoy(m: &Mutex<Vec<u8>>) -> usize {
    let guard = m.lock().unwrap();
    // stream.write_all(&buf) in a comment is not a call.
    let n = "accept() connect() recv()".len();
    guard.len() + n
}
