use std::io::Write;
use std::net::TcpStream;
use std::sync::Mutex;
use std::thread::JoinHandle;

pub fn respond(m: &Mutex<Vec<u8>>, stream: &mut TcpStream) -> std::io::Result<()> {
    let guard = m.lock().unwrap();
    let first = guard.first().copied().unwrap_or(0);
    stream.write_all(&[first])?;
    Ok(())
}

pub fn reap(pool: &Mutex<Vec<JoinHandle<()>>>) {
    let mut handles = pool.lock().unwrap();
    if let Some(h) = handles.pop() {
        let _ = h.join();
    }
}
