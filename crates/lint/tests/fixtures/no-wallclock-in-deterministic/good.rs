// Clean fixture: simulated time and seeded streams only; `Instant` in
// comments/strings does not count, and tests may time themselves.
pub fn simulated(step_ns: u64, steps: u64) -> u64 {
    // Instant::now() would break determinism here; obs spans handle
    // timing behind the tracing switch instead.
    let _doc = "SystemTime is only a word in this string";
    step_ns * steps
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_use_clocks() {
        let t0 = std::time::Instant::now();
        assert!(t0.elapsed().as_secs() < 60);
    }
}
