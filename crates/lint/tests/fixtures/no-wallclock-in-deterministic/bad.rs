// Seeded violations: wall-clock reads and thread-count dependence in a
// determinism-critical crate.
use std::time::{Instant, SystemTime};

pub fn timed_work() -> u64 {
    let t0 = Instant::now();
    let _wall = SystemTime::now();
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    t0.elapsed().as_nanos() as u64 + threads as u64
}
