// Clean fixture: widening casts and checked conversions only.
pub fn pack(uid: usize, nodes: u32, flag: bool) -> Result<(u32, u64, u8), String> {
    // "uid as u32" in a comment or string is not a cast.
    let _doc = "never write `x as u32` in serialization paths";
    let uid = u32::try_from(uid).map_err(|_| "uid overflows u32".to_string())?;
    let wide = nodes as u64; // widening: fine
    let frac = nodes as f64; // f64 holds every u32: fine
    let _ = frac;
    Ok((uid, wide, u8::from(flag)))
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_cast() {
        assert_eq!(300u64 as u8, 44); // deliberate wrap, test-only
    }
}
