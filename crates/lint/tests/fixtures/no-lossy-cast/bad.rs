// Seeded violations: narrowing `as` casts in a serialization path.
pub fn pack(uid: usize, msize: u64, weight: f64) -> (u32, u32, f32) {
    (uid as u32, msize as u32, weight as f32)
}

pub fn tiny(reps: u64) -> u8 {
    reps as u8
}
