// Clean fixture: total_cmp everywhere, plus the token-level traps that
// defeat grep — `partial_cmp` in comments, strings, and a trait impl.
use std::cmp::Ordering;

/// Docs may say partial_cmp freely.
pub fn sort_times(mut xs: Vec<f64>) -> Vec<f64> {
    xs.sort_by(f64::total_cmp);
    let _msg = "calling partial_cmp here would be a bug";
    /* block comment: a.partial_cmp(b) /* nested: x == 1.5 */ still fine */
    xs
}

pub struct Key(pub u64);

impl PartialOrd for Key {
    // Defining partial_cmp (prev token `fn`) is not a call site.
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.0.cmp(&other.0))
    }
}

impl PartialEq for Key {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}

pub fn comparator_without_raw_ops(xs: &mut [(u32, f64)]) {
    xs.sort_by(|a, b| a.1.total_cmp(&b.1));
    let raw = r#"inside a raw string: xs.sort_by(|a, b| a < b) // not code"#;
    let _ = raw;
}
