// Seeded violations for no-float-partial-order.
pub fn sort_times(mut xs: Vec<f64>) -> Vec<f64> {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    xs
}

pub fn raw_operator_comparator(mut xs: Vec<(u32, f64)>) {
    xs.sort_by(|a, b| if a.1 < b.1 { std::cmp::Ordering::Less } else { std::cmp::Ordering::Greater });
}

pub fn path_form(xs: &mut [f64]) {
    xs.sort_by(f64::partial_cmp_is_not_real_but_this_line_uses(f64::partial_cmp));
}
