use std::sync::atomic::{AtomicU64, Ordering};

pub fn publish(seq: &AtomicU64, data: &AtomicU64) {
    data.store(1, Ordering::Relaxed);

    seq.store(2, Ordering::Release);
}

pub fn read_flag(flag: &AtomicU64) -> u64 {
    flag.load(Ordering::Acquire)
}
