use std::sync::atomic::{AtomicU64, Ordering};

pub fn annotated(flag: &AtomicU64) -> u64 {
    // ORDERING: Acquire pairs with the Release store below.
    let v = flag.load(Ordering::Acquire);
    flag.store(v, Ordering::Release); // ORDERING: publishes v back.
    v
}

pub struct Snap {
    pub a: u64,
    pub b: u64,
}

pub fn snapshot(x: &AtomicU64, y: &AtomicU64) -> Snap {
    Snap {
        // ORDERING: Relaxed — point-in-time counter snapshot; one
        // comment covers the whole cluster of loads.
        a: x.load(Ordering::Relaxed),
        b: y.load(Ordering::Relaxed),
    }
}

pub fn cluster(seq: &AtomicU64, data: &AtomicU64) {
    // ORDERING: seqlock-style write sequence: the comment above the
    // first statement covers the contiguous run of atomic statements.
    data.store(1, Ordering::Relaxed);
    seq.store(2, Ordering::Release);
}

pub fn decoys() -> &'static str {
    // A mention of Ordering::SeqCst in a comment is not an atomic op.
    "Ordering::Relaxed inside a string literal is not a site either"
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn test_code_is_exempt() {
        let f = AtomicU64::new(0);
        f.store(1, Ordering::Relaxed);
    }
}
