use std::sync::atomic::{AtomicU64, Ordering};

pub struct Cell {
    seq: AtomicU64,
    epoch: AtomicU64,
    count: AtomicU64,
}

impl Cell {
    pub fn publish(&self) {
        self.seq.store(2, Ordering::Release);
        self.epoch.fetch_add(1, Ordering::Release);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    pub fn observe(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    pub fn decoy() -> &'static str {
        "seq.store(0, Ordering::Relaxed) inside a string is not a site"
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn relaxed_publish_in_tests_is_exempt() {
        let seq = AtomicU64::new(0);
        seq.store(1, Ordering::Relaxed);
    }
}
