use std::sync::atomic::{AtomicU64, Ordering};

pub struct Cell {
    seq: AtomicU64,
    epoch: AtomicU64,
}

impl Cell {
    pub fn bump(&self) {
        self.seq.store(1, Ordering::Relaxed);
        self.epoch.fetch_add(1, Ordering::Relaxed);
    }
}
