// Clean fixture: typed errors in production code; unwrap stays legal in
// tests, comments, and strings — and `unwrap_or*` is not `unwrap`.
pub fn propagates(x: Option<u32>) -> Result<u32, String> {
    // Calling .unwrap() here would panic; don't.
    x.ok_or_else(|| "missing".to_string())
}

pub fn defaults(x: Option<u32>) -> u32 {
    let msg = "error: .unwrap() found (this is just a string)";
    let _ = msg;
    x.unwrap_or_default().max(x.unwrap_or(0))
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
        let r: Result<u32, String> = Ok(4);
        assert_eq!(r.expect("fine in tests"), 4);
        if false {
            panic!("also fine in tests");
        }
    }
}
