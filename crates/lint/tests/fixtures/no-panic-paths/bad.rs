// Seeded violations for no-panic-paths: one of each flavor.
pub fn unwrap_site(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn expect_site(x: Result<u32, String>) -> u32 {
    x.expect("boom")
}

pub fn macro_sites(kind: u8) -> u32 {
    match kind {
        0 => panic!("kind zero"),
        1 => todo!(),
        2 => unimplemented!(),
        _ => unreachable!("guarded above"),
    }
}
