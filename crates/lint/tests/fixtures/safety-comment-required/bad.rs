// Seeded violation: unsafe with no adjacent SAFETY comment (lexed as if
// it lived in crates/ml/). The string and comment mentions below must
// NOT count as the justification.
pub fn read_first(xs: &[u64]) -> u64 {
    let _note = "SAFETY: strings do not justify anything";
    // This comment is adjacent but lacks the magic word.
    unsafe { *xs.get_unchecked(0) }
}
