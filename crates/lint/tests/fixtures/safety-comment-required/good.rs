// Clean fixture: every unsafe carries an adjacent SAFETY comment, and
// `unsafe` inside strings/comments is not an occurrence at all.
pub fn read_first(xs: &[u64]) -> u64 {
    assert!(!xs.is_empty());
    // SAFETY: the assert above guarantees index 0 is in bounds, and the
    // comment may span several lines before the block.
    unsafe { *xs.get_unchecked(0) }
}

pub fn not_code() -> &'static str {
    // the word unsafe in a comment is fine
    "unsafe in a string is fine too"
}
