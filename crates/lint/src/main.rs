//! `mpcp-lint` — the workspace's static-analysis gate.
//!
//! ```text
//! cargo run -p mpcp-lint -- check                  # lint the workspace
//! cargo run -p mpcp-lint -- check --json out.json  # + JSON v1 report
//! cargo run -p mpcp-lint -- check --sarif out.sarif # + SARIF 2.1.0 report
//! cargo run -p mpcp-lint -- check --format sarif   # SARIF on stdout
//! cargo run -p mpcp-lint -- check --fix-allowlist  # emit lint.toml stanzas
//! cargo run -p mpcp-lint -- check --deny-unused-allows # stale [[allow]] = exit 1
//! cargo run -p mpcp-lint -- rules                  # print the rule catalog
//! ```
//!
//! Exit codes: 0 clean, 1 violations found (or, with
//! `--deny-unused-allows`, stale allowlist entries), 2 usage/config
//! error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use mpcp_lint::{config::Config, report, rules};

struct CheckOpts {
    root: PathBuf,
    config: Option<PathBuf>,
    json: Option<PathBuf>,
    sarif: Option<PathBuf>,
    format: Format,
    deny_unused_allows: bool,
    fix_allowlist: bool,
    fix_rule: Option<String>,
    fix_path: Option<String>,
    show_allowed: bool,
}

#[derive(PartialEq)]
enum Format {
    Human,
    Json,
    Sarif,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: mpcp-lint check [--root DIR] [--config FILE] [--json FILE] \
         [--sarif FILE] [--format human|json|sarif] [--deny-unused-allows] \
         [--show-allowed] [--fix-allowlist [--rule NAME] [--path SUBSTR]]\n       \
         mpcp-lint rules"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..]),
        Some("rules") => {
            for r in rules::all_rules() {
                println!("{:32} {}", r.name(), r.summary());
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}

fn parse_check_opts(args: &[String]) -> Option<CheckOpts> {
    let mut opts = CheckOpts {
        root: find_workspace_root(),
        config: None,
        json: None,
        sarif: None,
        format: Format::Human,
        deny_unused_allows: false,
        fix_allowlist: false,
        fix_rule: None,
        fix_path: None,
        show_allowed: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => opts.root = PathBuf::from(it.next()?),
            "--config" => opts.config = Some(PathBuf::from(it.next()?)),
            "--json" => opts.json = Some(PathBuf::from(it.next()?)),
            "--sarif" => opts.sarif = Some(PathBuf::from(it.next()?)),
            "--format" => {
                opts.format = match it.next()?.as_str() {
                    "human" => Format::Human,
                    "json" => Format::Json,
                    "sarif" => Format::Sarif,
                    _ => return None,
                }
            }
            "--deny-unused-allows" => opts.deny_unused_allows = true,
            "--fix-allowlist" => opts.fix_allowlist = true,
            "--rule" => opts.fix_rule = Some(it.next()?.clone()),
            "--path" => opts.fix_path = Some(it.next()?.clone()),
            "--show-allowed" => opts.show_allowed = true,
            _ => return None,
        }
    }
    Some(opts)
}

fn check(args: &[String]) -> ExitCode {
    let Some(opts) = parse_check_opts(args) else {
        return usage();
    };
    let config_path = opts.config.clone().unwrap_or_else(|| opts.root.join("lint.toml"));
    let cfg = if config_path.exists() {
        let text = match std::fs::read_to_string(&config_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {}: {e}", config_path.display());
                return ExitCode::from(2);
            }
        };
        match Config::parse(&text) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        Config::default()
    };
    let started = std::time::Instant::now();
    let lint_report = match mpcp_lint::lint_workspace(&opts.root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(json_path) = &opts.json {
        let json = report::render_json(&lint_report);
        if let Err(e) = std::fs::write(json_path, json) {
            eprintln!("error: cannot write {}: {e}", json_path.display());
            return ExitCode::from(2);
        }
    }
    if let Some(sarif_path) = &opts.sarif {
        let sarif = report::render_sarif(&lint_report);
        if let Err(e) = std::fs::write(sarif_path, sarif) {
            eprintln!("error: cannot write {}: {e}", sarif_path.display());
            return ExitCode::from(2);
        }
    }
    if opts.fix_allowlist {
        print!(
            "{}",
            report::render_fix_allowlist(
                &lint_report,
                &cfg.allow,
                opts.fix_rule.as_deref(),
                opts.fix_path.as_deref(),
            )
        );
        return ExitCode::SUCCESS;
    }
    match opts.format {
        Format::Human => {
            print!("{}", report::render_human(&lint_report, opts.show_allowed));
            println!("analyzed in {:?}", started.elapsed());
        }
        Format::Json => print!("{}", report::render_json(&lint_report)),
        Format::Sarif => print!("{}", report::render_sarif(&lint_report)),
    }
    if lint_report.violation_count() > 0
        || (opts.deny_unused_allows && !lint_report.unused_allows.is_empty())
    {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// The workspace root: walk up from CWD to the first directory holding
/// a `Cargo.toml` with a `[workspace]` table (falls back to CWD).
fn find_workspace_root() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut dir = cwd.clone();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return cwd;
        }
    }
}
