//! Human (diff-style) and machine-readable (JSON) rendering of a
//! [`LintReport`], plus the `--fix-allowlist` stanza emitter.

use std::fmt::Write as _;

use crate::config::allow_stanza;
use crate::{Finding, LintReport};

/// Render one finding the way rustc renders diagnostics, so editors
/// and CI annotations pick the location up.
pub fn render_finding(f: &Finding) -> String {
    let mut out = String::new();
    let gutter = f.line.to_string();
    let pad = " ".repeat(gutter.len());
    match &f.allowed {
        None => {
            let _ = writeln!(out, "error[{}]: {}", f.rule, f.message);
        }
        Some(reason) => {
            let _ = writeln!(out, "allowed[{}]: {} (reason: {reason})", f.rule, f.message);
        }
    }
    let _ = writeln!(out, "{pad}--> {}:{}:{}", f.path, f.line, f.col);
    let _ = writeln!(out, "{pad} |");
    let _ = writeln!(out, "{gutter} | {}", f.line_text);
    let caret_col = f.col.saturating_sub(1) as usize;
    let _ = writeln!(out, "{pad} | {}^", " ".repeat(caret_col));
    out
}

/// Render the whole report for a terminal.
pub fn render_human(report: &LintReport, show_allowed: bool) -> String {
    let mut out = String::new();
    for f in &report.findings {
        if f.allowed.is_none() || show_allowed {
            out.push_str(&render_finding(f));
            out.push('\n');
        }
    }
    for a in &report.unused_allows {
        let _ = writeln!(
            out,
            "warning[unused-allow]: lint.toml entry ({} @ {}{}) matched nothing — delete it?",
            a.rule,
            a.path,
            a.contains.as_deref().map(|c| format!(", contains \"{c}\"")).unwrap_or_default(),
        );
    }
    let allowed = report.findings.len() - report.violation_count();
    let _ = writeln!(
        out,
        "{} file(s) checked: {} violation(s), {} allowed exception(s)",
        report.files_checked,
        report.violation_count(),
        allowed,
    );
    out
}

/// Minimal JSON string escaping (mirrors `mpcp-obs`'s exporter rules).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render the report as a machine-readable JSON document (uploaded as a
/// CI artifact; schema version 1).
pub fn render_json(report: &LintReport) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n  \"findings\": [\n");
    for (i, f) in report.findings.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"col\": {}, \
             \"message\": \"{}\", \"snippet\": \"{}\", \"allowed\": {}",
            esc(f.rule),
            esc(&f.path),
            f.line,
            f.col,
            esc(&f.message),
            esc(f.line_text.trim()),
            f.allowed.is_some(),
        );
        if let Some(reason) = &f.allowed {
            let _ = write!(out, ", \"reason\": \"{}\"", esc(reason));
        }
        out.push_str(if i + 1 < report.findings.len() { "},\n" } else { "}\n" });
    }
    let _ = write!(
        out,
        "  ],\n  \"summary\": {{\"files_checked\": {}, \"violations\": {}, \
         \"allowed\": {}, \"unused_allows\": {}}}\n}}\n",
        report.files_checked,
        report.violation_count(),
        report.findings.len() - report.violation_count(),
        report.unused_allows.len(),
    );
    out
}

/// Emit ready-to-paste `[[allow]]` stanzas for the (non-allowed)
/// findings, optionally filtered by rule and/or path substring.
pub fn render_fix_allowlist(
    report: &LintReport,
    rule: Option<&str>,
    path: Option<&str>,
) -> String {
    let mut out = String::new();
    let mut seen: Vec<(String, String, String)> = Vec::new();
    for f in report.violations() {
        if rule.is_some_and(|r| r != f.rule) {
            continue;
        }
        if path.is_some_and(|p| !f.path.contains(p)) {
            continue;
        }
        // `contains` keys on the trimmed source line: stable across
        // reformatting and line-number drift.
        let key = (f.rule.to_string(), f.path.clone(), f.line_text.trim().to_string());
        if seen.contains(&key) {
            continue;
        }
        let _ = writeln!(
            out,
            "# {}:{}:{} — {}",
            f.path, f.line, f.col, f.message
        );
        out.push_str(&allow_stanza(f.rule, &f.path, f.line_text.trim()));
        out.push('\n');
        seen.push(key);
    }
    if out.is_empty() {
        out.push_str("# no unallowed findings — nothing to triage\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Finding;

    fn sample(allowed: Option<&str>) -> LintReport {
        LintReport {
            findings: vec![Finding {
                rule: "no-panic-paths",
                path: "crates/x/src/a.rs".into(),
                line: 7,
                col: 13,
                line_text: "    let v = x.unwrap();".into(),
                message: "unwrap panics".into(),
                allowed: allowed.map(String::from),
            }],
            files_checked: 1,
            unused_allows: vec![],
        }
    }

    #[test]
    fn human_output_carries_location_and_caret() {
        let text = render_human(&sample(None), false);
        assert!(text.contains("error[no-panic-paths]"), "{text}");
        assert!(text.contains("--> crates/x/src/a.rs:7:13"), "{text}");
        assert!(text.contains("1 violation(s)"), "{text}");
    }

    #[test]
    fn allowed_findings_do_not_count_as_violations() {
        let text = render_human(&sample(Some("bounded by registry")), false);
        assert!(text.contains("0 violation(s), 1 allowed"), "{text}");
    }

    #[test]
    fn json_is_parseable_by_obs_parser_shape() {
        // Hand-check the JSON skeleton: balanced braces and quoted keys.
        let json = render_json(&sample(None));
        assert!(json.contains("\"version\": 1"));
        assert!(json.contains("\"violations\": 1"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn fix_allowlist_emits_a_stanza_per_unique_finding() {
        let text = render_fix_allowlist(&sample(None), None, None);
        assert!(text.contains("[[allow]]"), "{text}");
        assert!(text.contains("contains = \"let v = x.unwrap();\""), "{text}");
        let filtered = render_fix_allowlist(&sample(None), Some("other-rule"), None);
        assert!(filtered.contains("nothing to triage"), "{filtered}");
    }
}
