//! Human (diff-style) and machine-readable (JSON v1 / SARIF 2.1.0
//! subset) rendering of a [`LintReport`], plus the `--fix-allowlist`
//! stanza emitter.

use std::fmt::Write as _;

use crate::config::{allow_stanza, AllowEntry};
use crate::{Finding, LintReport};

/// Render one finding the way rustc renders diagnostics, so editors
/// and CI annotations pick the location up.
pub fn render_finding(f: &Finding) -> String {
    let mut out = String::new();
    let gutter = f.line.to_string();
    let pad = " ".repeat(gutter.len());
    match &f.allowed {
        None => {
            let _ = writeln!(out, "error[{}]: {}", f.rule, f.message);
        }
        Some(reason) => {
            let _ = writeln!(out, "allowed[{}]: {} (reason: {reason})", f.rule, f.message);
        }
    }
    let _ = writeln!(out, "{pad}--> {}:{}:{}", f.path, f.line, f.col);
    let _ = writeln!(out, "{pad} |");
    let _ = writeln!(out, "{gutter} | {}", f.line_text);
    let caret_col = f.col.saturating_sub(1) as usize;
    let _ = writeln!(out, "{pad} | {}^", " ".repeat(caret_col));
    out
}

/// Render the whole report for a terminal.
pub fn render_human(report: &LintReport, show_allowed: bool) -> String {
    let mut out = String::new();
    for f in &report.findings {
        if f.allowed.is_none() || show_allowed {
            out.push_str(&render_finding(f));
            out.push('\n');
        }
    }
    for a in &report.unused_allows {
        let _ = writeln!(
            out,
            "warning[unused-allow]: lint.toml entry ({} @ {}{}) matched nothing — delete it?",
            a.rule,
            a.path,
            a.contains.as_deref().map(|c| format!(", contains \"{c}\"")).unwrap_or_default(),
        );
    }
    let allowed = report.findings.len() - report.violation_count();
    let _ = writeln!(
        out,
        "{} file(s) checked: {} violation(s), {} allowed exception(s)",
        report.files_checked,
        report.violation_count(),
        allowed,
    );
    out
}

/// Minimal JSON string escaping (mirrors `mpcp-obs`'s exporter rules).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render the report as a machine-readable JSON document (uploaded as a
/// CI artifact; schema version 1).
pub fn render_json(report: &LintReport) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n  \"findings\": [\n");
    for (i, f) in report.findings.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"col\": {}, \
             \"message\": \"{}\", \"snippet\": \"{}\", \"allowed\": {}",
            esc(f.rule),
            esc(&f.path),
            f.line,
            f.col,
            esc(&f.message),
            esc(f.line_text.trim()),
            f.allowed.is_some(),
        );
        if let Some(reason) = &f.allowed {
            let _ = write!(out, ", \"reason\": \"{}\"", esc(reason));
        }
        out.push_str(if i + 1 < report.findings.len() { "},\n" } else { "}\n" });
    }
    let _ = write!(
        out,
        "  ],\n  \"summary\": {{\"files_checked\": {}, \"violations\": {}, \
         \"allowed\": {}, \"unused_allows\": {}}}\n}}\n",
        report.files_checked,
        report.violation_count(),
        report.findings.len() - report.violation_count(),
        report.unused_allows.len(),
    );
    out
}

/// Render the report as a SARIF 2.1.0 document (subset: one run, the
/// rule catalog as `tool.driver.rules`, one `result` per finding with a
/// physical location). GitHub's code-scanning upload and most SARIF
/// viewers render these as inline annotations. Violations map to
/// `error`; allowlisted findings are kept as `note`s so the exceptions
/// stay visible in the same artifact.
pub fn render_sarif(report: &LintReport) -> String {
    let mut out = String::from(
        "{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \
         \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n      \"tool\": {\n        \
         \"driver\": {\n          \"name\": \"mpcp-lint\",\n          \"rules\": [\n",
    );
    let registry = crate::rules::all_rules();
    for (i, r) in registry.iter().enumerate() {
        let _ = write!(
            out,
            "            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}",
            esc(r.name()),
            esc(r.summary()),
        );
        out.push_str(if i + 1 < registry.len() { ",\n" } else { "\n" });
    }
    out.push_str("          ]\n        }\n      },\n      \"results\": [\n");
    for (i, f) in report.findings.iter().enumerate() {
        let level = if f.allowed.is_some() { "note" } else { "error" };
        let message = match &f.allowed {
            Some(reason) => format!("{} (allowed: {reason})", f.message),
            None => f.message.clone(),
        };
        let _ = write!(
            out,
            "        {{\"ruleId\": \"{}\", \"level\": \"{level}\", \
             \"message\": {{\"text\": \"{}\"}}, \"locations\": [{{\
             \"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \
             \"region\": {{\"startLine\": {}, \"startColumn\": {}}}}}}}]}}",
            esc(f.rule),
            esc(&message),
            esc(&f.path),
            f.line,
            f.col,
        );
        out.push_str(if i + 1 < report.findings.len() { ",\n" } else { "\n" });
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

/// Emit ready-to-paste `[[allow]]` stanzas for the (non-allowed)
/// findings, optionally filtered by rule and/or path substring.
///
/// `existing` is the config's current allowlist: a finding whose
/// rule/path/line an existing entry already covers (exact path or
/// directory prefix) gets no stanza — pasting one would shadow the
/// checked-in entry and go stale the moment either is edited. A
/// same-rule entry that covers the path but whose `contains` misses the
/// line gets a pointer instead, so the fix is "widen the entry", not
/// "add a twin".
pub fn render_fix_allowlist(
    report: &LintReport,
    existing: &[AllowEntry],
    rule: Option<&str>,
    path: Option<&str>,
) -> String {
    let mut out = String::new();
    let mut seen: Vec<(String, String, String)> = Vec::new();
    for f in report.violations() {
        if rule.is_some_and(|r| r != f.rule) {
            continue;
        }
        if path.is_some_and(|p| !f.path.contains(p)) {
            continue;
        }
        // `contains` keys on the trimmed source line: stable across
        // reformatting and line-number drift.
        let key = (f.rule.to_string(), f.path.clone(), f.line_text.trim().to_string());
        if seen.contains(&key) {
            continue;
        }
        seen.push(key);
        let path_covered = |a: &AllowEntry| {
            a.rule == f.rule
                && (f.path == a.path
                    || (a.path.ends_with('/') && f.path.starts_with(a.path.as_str())))
        };
        if existing
            .iter()
            .any(|a| path_covered(a) && a.contains.as_deref().is_none_or(|c| f.line_text.contains(c)))
        {
            // Already covered by a checked-in entry: nothing to paste.
            continue;
        }
        let _ = writeln!(
            out,
            "# {}:{}:{} — {}",
            f.path, f.line, f.col, f.message
        );
        if let Some(a) = existing.iter().find(|a| path_covered(a)) {
            let _ = writeln!(
                out,
                "# note: an existing [[allow]] ({} @ {}{}) covers this path — widen its \
                 `contains` instead of adding the stanza below",
                a.rule,
                a.path,
                a.contains.as_deref().map(|c| format!(", contains \"{c}\"")).unwrap_or_default(),
            );
        }
        out.push_str(&allow_stanza(f.rule, &f.path, f.line_text.trim()));
        out.push('\n');
    }
    if out.is_empty() {
        out.push_str("# no unallowed findings — nothing to triage\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Finding;

    fn sample(allowed: Option<&str>) -> LintReport {
        LintReport {
            findings: vec![Finding {
                rule: "no-panic-paths",
                path: "crates/x/src/a.rs".into(),
                line: 7,
                col: 13,
                line_text: "    let v = x.unwrap();".into(),
                message: "unwrap panics".into(),
                allowed: allowed.map(String::from),
            }],
            files_checked: 1,
            unused_allows: vec![],
        }
    }

    #[test]
    fn human_output_carries_location_and_caret() {
        let text = render_human(&sample(None), false);
        assert!(text.contains("error[no-panic-paths]"), "{text}");
        assert!(text.contains("--> crates/x/src/a.rs:7:13"), "{text}");
        assert!(text.contains("1 violation(s)"), "{text}");
    }

    #[test]
    fn allowed_findings_do_not_count_as_violations() {
        let text = render_human(&sample(Some("bounded by registry")), false);
        assert!(text.contains("0 violation(s), 1 allowed"), "{text}");
    }

    #[test]
    fn json_is_parseable_by_obs_parser_shape() {
        // Hand-check the JSON skeleton: balanced braces and quoted keys.
        let json = render_json(&sample(None));
        assert!(json.contains("\"version\": 1"));
        assert!(json.contains("\"violations\": 1"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn fix_allowlist_emits_a_stanza_per_unique_finding() {
        let text = render_fix_allowlist(&sample(None), &[], None, None);
        assert!(text.contains("[[allow]]"), "{text}");
        assert!(text.contains("contains = \"let v = x.unwrap();\""), "{text}");
        let filtered = render_fix_allowlist(&sample(None), &[], Some("other-rule"), None);
        assert!(filtered.contains("nothing to triage"), "{filtered}");
    }

    #[test]
    fn fix_allowlist_dedups_against_existing_directory_prefix_entries() {
        // An existing dir-prefix entry that already covers the finding's
        // rule/path/line: no stanza to paste.
        let covered = AllowEntry {
            rule: "no-panic-paths".into(),
            path: "crates/x/src/".into(),
            contains: None,
            reason: "whole crate exempt".into(),
        };
        let text = render_fix_allowlist(&sample(None), &[covered], None, None);
        assert!(text.contains("nothing to triage"), "{text}");

        // Same rule and path coverage but a `contains` that misses the
        // line: emit the stanza, with a pointer at the near-miss entry.
        let near_miss = AllowEntry {
            rule: "no-panic-paths".into(),
            path: "crates/x/src/".into(),
            contains: Some("some_other_line()".into()),
            reason: "narrow exception".into(),
        };
        let text = render_fix_allowlist(&sample(None), &[near_miss], None, None);
        assert!(text.contains("[[allow]]"), "{text}");
        assert!(text.contains("widen its `contains`"), "{text}");

        // An entry for a different rule changes nothing.
        let other_rule = AllowEntry {
            rule: "no-lossy-cast".into(),
            path: "crates/x/src/".into(),
            contains: None,
            reason: "unrelated".into(),
        };
        let text = render_fix_allowlist(&sample(None), &[other_rule], None, None);
        assert!(text.contains("[[allow]]"), "{text}");
        assert!(!text.contains("widen its `contains`"), "{text}");
    }

    #[test]
    fn sarif_report_has_rules_results_and_locations() {
        let sarif = render_sarif(&sample(None));
        assert!(sarif.contains("\"version\": \"2.1.0\""), "{sarif}");
        assert!(sarif.contains("\"id\": \"no-lock-across-blocking\""), "{sarif}");
        assert!(sarif.contains("\"ruleId\": \"no-panic-paths\""), "{sarif}");
        assert!(sarif.contains("\"level\": \"error\""), "{sarif}");
        assert!(sarif.contains("\"uri\": \"crates/x/src/a.rs\""), "{sarif}");
        assert!(sarif.contains("\"startLine\": 7"), "{sarif}");
        assert_eq!(sarif.matches('{').count(), sarif.matches('}').count());

        // Allowlisted findings downgrade to notes but stay present.
        let sarif = render_sarif(&sample(Some("bounded by registry")));
        assert!(sarif.contains("\"level\": \"note\""), "{sarif}");
        assert!(sarif.contains("allowed: bounded by registry"), "{sarif}");
    }
}
