//! A lightweight structural layer over the token stream: block
//! nesting, fn items, let bindings, and balanced-delimiter matching.
//!
//! The PR 4 rules are purely token-local — enough for "is this ident
//! `partial_cmp`", useless for "is this Mutex guard still live at that
//! blocking call". This module recovers just enough structure for the
//! concurrency rules without becoming a parser: a single
//! recursive-descent-shaped pass over the non-comment tokens builds
//!
//! - the **block tree** (every `{ ... }`, with parent links and a
//!   closure-body flag so deferred code can be told apart from inline
//!   code),
//! - **fn items** (name → body block),
//! - **let bindings** (name, initializer span, terminating `;`, and the
//!   enclosing block — i.e. the binding's drop scope).
//!
//! Like the lexer it is total: arbitrary byte soup produces *some*
//! tree (unclosed blocks keep `close = None`, stray `}` at the root
//! are ignored), never a panic. The `syntax_props` proptests pin that
//! down: parsing never panics, block spans nest properly, and every
//! code token is assigned to exactly one innermost block.
//!
//! No type inference, no name resolution — rules built on top accept
//! the same "syntactic fact, not semantic proof" contract the
//! token-level rules already have, and stay zero-dependency.

use crate::lexer::TokKind;
use crate::SourceFile;

/// One `{ ... }` block. Indices are *code-token* indices (positions in
/// [`Syntax::code`], not raw token indices).
#[derive(Debug)]
pub struct Block {
    /// Code index of the opening `{`; `None` only for the synthetic
    /// root block that covers the whole file.
    pub open: Option<usize>,
    /// Code index of the matching `}`; `None` when unclosed at EOF.
    pub close: Option<usize>,
    /// Parent block id; `None` only for the root.
    pub parent: Option<usize>,
    /// The block is a closure body (`|x| { ... }` / `move || { ... }`):
    /// code inside runs *later*, not at the point of definition.
    pub closure: bool,
}

/// A `fn` item header and (when present) its body block.
#[derive(Debug)]
pub struct FnItem {
    pub name: String,
    /// Code index of the name ident.
    pub name_ci: usize,
    /// Body block id; `None` for trait-method declarations (`fn f();`).
    pub body: Option<usize>,
}

/// A `let [mut] name [: Ty] = init;` binding. Pattern bindings
/// (`let (a, b) = ..`, `let Some(x) = ..`) are deliberately skipped:
/// the guard-tracking rule only needs simple named bindings, and a
/// miss there is a false *negative*, never a false positive.
#[derive(Debug)]
pub struct LetBinding {
    pub name: String,
    /// Code index of the bound name.
    pub name_ci: usize,
    /// Code index of the first initializer token (just past `=`).
    pub init_start: usize,
    /// Code index of the terminating `;`; `None` when the statement is
    /// unterminated (soup, or a `let ... else` we chose not to model).
    pub semi: Option<usize>,
    /// Innermost enclosing block — the binding's drop scope.
    pub block: usize,
}

/// The recovered structure of one source file.
pub struct Syntax {
    /// Indices of non-comment tokens, in order (the alphabet every
    /// other field's "code index" refers to).
    pub code: Vec<usize>,
    /// Block tree; index 0 is the synthetic whole-file root.
    pub blocks: Vec<Block>,
    /// Innermost block id per code token (same length as `code`).
    pub block_of: Vec<usize>,
    pub fns: Vec<FnItem>,
    pub lets: Vec<LetBinding>,
}

impl Syntax {
    /// Build the structural view of `file`. Total: never panics, any
    /// input yields a tree.
    pub fn parse(file: &SourceFile) -> Syntax {
        let toks = &file.lexed.toks;
        let code: Vec<usize> = (0..toks.len())
            .filter(|&i| {
                !matches!(toks[i].kind, TokKind::LineComment | TokKind::BlockComment)
            })
            .collect();
        let txt =
            |ci: usize| file.text.get(toks[code[ci]].start..toks[code[ci]].end).unwrap_or("");
        let kind = |ci: usize| toks[code[ci]].kind;

        let mut blocks =
            vec![Block { open: None, close: None, parent: None, closure: false }];
        let mut stack: Vec<usize> = vec![0];
        let mut block_of = vec![0usize; code.len()];
        let mut fns: Vec<FnItem> = Vec::new();
        let mut lets: Vec<LetBinding> = Vec::new();
        // Index of the fn item whose body `{` we are waiting for; the
        // wait is cancelled by a `;` outside parens (trait decl).
        let mut pending_fn: Option<usize> = None;
        let mut paren_depth = 0usize;

        // Indexed loop on purpose: `k + 1` lookahead and the `txt`/`kind`
        // closures all key off the code-token index.
        #[allow(clippy::needless_range_loop)]
        for k in 0..code.len() {
            let cur = *stack.last().unwrap_or(&0);
            block_of[k] = cur;
            match txt(k) {
                "{" => {
                    let id = blocks.len();
                    blocks.push(Block {
                        open: Some(k),
                        close: None,
                        parent: Some(cur),
                        closure: is_closure_header(k, &txt, &kind),
                    });
                    block_of[k] = id;
                    if paren_depth == 0 {
                        if let Some(fi) = pending_fn.take() {
                            fns[fi].body = Some(id);
                        }
                    }
                    stack.push(id);
                }
                // A stray `}` at the root is soup; ignore it there.
                "}" if stack.len() > 1 => {
                    let id = stack.pop().unwrap_or(0);
                    blocks[id].close = Some(k);
                    block_of[k] = id;
                }
                "(" | "[" => paren_depth += 1,
                ")" | "]" => paren_depth = paren_depth.saturating_sub(1),
                ";" if paren_depth == 0 => pending_fn = None,
                "fn" if kind(k) == TokKind::Ident
                    && k + 1 < code.len()
                    && kind(k + 1) == TokKind::Ident =>
                {
                    fns.push(FnItem {
                        name: txt(k + 1).to_string(),
                        name_ci: k + 1,
                        body: None,
                    });
                    pending_fn = Some(fns.len() - 1);
                }
                "let" if kind(k) == TokKind::Ident => {
                    if let Some(lb) = parse_let(k, cur, &code, &txt, &kind) {
                        lets.push(lb);
                    }
                }
                _ => {}
            }
        }
        Syntax { code, blocks, block_of, fns, lets }
    }

    /// Code index of the `)`/`]`/`}` matching the opener at `open_ci`,
    /// or `None` when unbalanced.
    pub fn matching_close(&self, file: &SourceFile, open_ci: usize) -> Option<usize> {
        let toks = &file.lexed.toks;
        let txt = |ci: usize| {
            file.text.get(toks[self.code[ci]].start..toks[self.code[ci]].end).unwrap_or("")
        };
        let (open, close) = match txt(open_ci) {
            "(" => ("(", ")"),
            "[" => ("[", "]"),
            "{" => ("{", "}"),
            _ => return None,
        };
        let mut depth = 1usize;
        let mut m = open_ci + 1;
        while m < self.code.len() {
            let t = txt(m);
            if t == open {
                depth += 1;
            } else if t == close {
                depth -= 1;
                if depth == 0 {
                    return Some(m);
                }
            }
            m += 1;
        }
        None
    }

    /// Block id of the closure body opening at code index `ci`, if any.
    pub fn closure_block_at(&self, ci: usize) -> Option<usize> {
        // `block_of` maps an opening `{` to its own block id.
        let id = *self.block_of.get(ci)?;
        let b = self.blocks.get(id)?;
        (b.open == Some(ci) && b.closure).then_some(id)
    }
}

/// Is the `{` at code index `k` a closure body? True when the tokens
/// just before it are `|`/`||` (param list end), optionally through a
/// `-> Type` return annotation. Heuristic — `a | b -> c {` does not
/// occur in expression position in real Rust — and biased toward
/// *false* (treating a closure as inline code), which for the
/// guard-scope rule only risks a stricter check, never a missed scope.
fn is_closure_header<'t>(
    k: usize,
    txt: &impl Fn(usize) -> &'t str,
    kind: &impl Fn(usize) -> TokKind,
) -> bool {
    if k == 0 {
        return false;
    }
    let mut i = k - 1;
    if matches!(txt(i), "|" | "||") {
        return true;
    }
    // Walk back through a plausible `-> Type` tail (bounded).
    for _ in 0..24 {
        let t = txt(i);
        if t == "->" {
            return i > 0 && matches!(txt(i - 1), "|" | "||");
        }
        let typeish = matches!(kind(i), TokKind::Ident | TokKind::Lifetime)
            || matches!(t, "::" | "<" | ">" | ">>" | "&" | "&&" | "(" | ")" | "[" | "]" | "," | "+");
        if !typeish || i == 0 {
            return false;
        }
        i -= 1;
    }
    false
}

/// Parse `let [mut] name [: Ty] = init ;` starting at the `let` token.
fn parse_let<'t>(
    k: usize,
    block: usize,
    code: &[usize],
    txt: &impl Fn(usize) -> &'t str,
    kind: &impl Fn(usize) -> TokKind,
) -> Option<LetBinding> {
    let mut j = k + 1;
    if j < code.len() && txt(j) == "mut" {
        j += 1;
    }
    if j >= code.len() || kind(j) != TokKind::Ident {
        return None;
    }
    let name_ci = j;
    let name = txt(j);
    // Patterns (`let Some(x)`, `let (a, b)`) are skipped: the next
    // token after a simple binding is `:`, `=`, or `;`.
    if j + 1 < code.len() && !matches!(txt(j + 1), ":" | "=" | ";") {
        return None;
    }
    // Find `=` at depth 0 before any `;`/`{`-of-a-body surprises; the
    // lexer emits `==`, `=>`, `<=` etc. as single tokens, so a bare
    // `=` here is exactly the initializer's assignment.
    let mut depth = 0usize;
    let mut eq = None;
    let mut m = j + 1;
    while m < code.len() {
        match txt(m) {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                if depth == 0 {
                    return None; // end of enclosing block: no init
                }
                depth -= 1;
            }
            ";" if depth == 0 => return None, // `let x;`
            "=" if depth == 0 => {
                eq = Some(m);
                break;
            }
            _ => {}
        }
        m += 1;
    }
    let eq = eq?;
    // Find the terminating `;` at depth 0 (brace-aware: the init may
    // be an `if`/`match`/block expression).
    let mut depth = 0usize;
    let mut semi = None;
    let mut m = eq + 1;
    while m < code.len() {
        match txt(m) {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                if depth == 0 {
                    break; // unterminated (soup or block end)
                }
                depth -= 1;
            }
            ";" if depth == 0 => {
                semi = Some(m);
                break;
            }
            _ => {}
        }
        m += 1;
    }
    Some(LetBinding { name: name.to_string(), name_ci, init_start: eq + 1, semi, block })
}
