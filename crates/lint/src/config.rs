//! `lint.toml`: rule scopes and the allowlist of intentional
//! exceptions.
//!
//! The parser supports the TOML subset the config actually uses —
//! comments, `[section]` / `[section.sub]` headers, `[[allow]]`
//! array-of-tables, and `key = "string"` / `key = ["a", "b"]` pairs —
//! with real errors (line numbers) on anything outside that subset.
//! Keeping the parser in-tree avoids an external dependency and makes
//! the accepted grammar an explicit, testable contract.

use std::collections::BTreeMap;
use std::fmt;

/// One intentional exception: a finding of `rule` in `path` (optionally
/// narrowed to lines containing `contains`) is reported as *allowed*
/// and does not fail the lint. `reason` is mandatory — an allowlist
/// entry without a justification is a config error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllowEntry {
    pub rule: String,
    pub path: String,
    pub contains: Option<String>,
    pub reason: String,
}

/// Per-rule scope override: path substrings to include / exclude.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RuleScope {
    pub include: Option<Vec<String>>,
    pub exclude: Option<Vec<String>>,
}

/// Parsed `lint.toml`.
#[derive(Clone, Debug, Default)]
pub struct Config {
    /// Path substrings excluded from every rule (fixture trees, etc.).
    pub global_exclude: Vec<String>,
    /// Per-rule scope overrides, keyed by rule name.
    pub rule_scopes: BTreeMap<String, RuleScope>,
    /// Intentional exceptions.
    pub allow: Vec<AllowEntry>,
}

/// A config parse/validation error with a 1-based line number.
#[derive(Debug, PartialEq, Eq)]
pub struct ConfigError {
    pub line: u32,
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

fn err(line: u32, message: impl Into<String>) -> ConfigError {
    ConfigError { line, message: message.into() }
}

/// Where a `key = value` pair should land.
enum Section {
    Global,
    Rule(String),
    Allow,
    /// Before any header: keys here are an error.
    Preamble,
}

impl Config {
    /// Parse a `lint.toml` document.
    pub fn parse(text: &str) -> Result<Config, ConfigError> {
        let mut cfg = Config::default();
        let mut section = Section::Preamble;
        for (i, raw) in text.lines().enumerate() {
            let lineno = i as u32 + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
                let header = header.trim();
                if header != "allow" {
                    return Err(err(lineno, format!("unknown array-of-tables [[{header}]]")));
                }
                cfg.allow.push(AllowEntry {
                    rule: String::new(),
                    path: String::new(),
                    contains: None,
                    reason: String::new(),
                });
                section = Section::Allow;
                continue;
            }
            if let Some(header) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                let header = header.trim();
                section = if header == "global" {
                    Section::Global
                } else if let Some(rule) = header.strip_prefix("rule.") {
                    Section::Rule(rule.to_string())
                } else {
                    return Err(err(lineno, format!("unknown section [{header}]")));
                };
                continue;
            }
            let (key, value) = parse_kv(line, lineno)?;
            match &section {
                Section::Global => match (key.as_str(), value) {
                    ("exclude", Value::Array(v)) => cfg.global_exclude = v,
                    (k, _) => {
                        return Err(err(lineno, format!("unknown [global] key `{k}`")));
                    }
                },
                Section::Rule(rule) => {
                    let scope = cfg.rule_scopes.entry(rule.clone()).or_default();
                    match (key.as_str(), value) {
                        ("include", Value::Array(v)) => scope.include = Some(v),
                        ("exclude", Value::Array(v)) => scope.exclude = Some(v),
                        (k, _) => {
                            return Err(err(
                                lineno,
                                format!("unknown [rule.{rule}] key `{k}` (expected include/exclude arrays)"),
                            ));
                        }
                    }
                }
                Section::Allow => {
                    let entry = cfg
                        .allow
                        .last_mut()
                        .ok_or_else(|| err(lineno, "key outside any [[allow]] table"))?;
                    match (key.as_str(), value) {
                        ("rule", Value::Str(s)) => entry.rule = s,
                        ("path", Value::Str(s)) => entry.path = s,
                        ("contains", Value::Str(s)) => entry.contains = Some(s),
                        ("reason", Value::Str(s)) => entry.reason = s,
                        (k, _) => {
                            return Err(err(
                                lineno,
                                format!("unknown [[allow]] key `{k}` (expected rule/path/contains/reason strings)"),
                            ));
                        }
                    }
                }
                Section::Preamble => {
                    return Err(err(lineno, "key before any section header"));
                }
            }
        }
        cfg.validate()?;
        Ok(cfg)
    }

    /// Reject allowlist entries that are missing required fields —
    /// above all a `reason`: undocumented exceptions are what this tool
    /// exists to prevent.
    fn validate(&self) -> Result<(), ConfigError> {
        for (i, a) in self.allow.iter().enumerate() {
            let ctx = |field: &str| {
                format!("[[allow]] entry {} ({}:{}) is missing `{field}`", i + 1, a.rule, a.path)
            };
            if a.rule.is_empty() {
                return Err(err(0, ctx("rule")));
            }
            if a.path.is_empty() {
                return Err(err(0, ctx("path")));
            }
            if a.reason.trim().is_empty() {
                return Err(err(0, ctx("reason")));
            }
        }
        Ok(())
    }
}

enum Value {
    Str(String),
    Array(Vec<String>),
}

/// Strip a `#` comment that is not inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let b = line.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'\\' if in_str => i += 1,
            b'"' => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
        i += 1;
    }
    line
}

fn parse_kv(line: &str, lineno: u32) -> Result<(String, Value), ConfigError> {
    let (key, rest) = line
        .split_once('=')
        .ok_or_else(|| err(lineno, format!("expected `key = value`, got `{line}`")))?;
    let key = key.trim().to_string();
    let rest = rest.trim();
    if rest.starts_with('[') {
        let inner = rest
            .strip_prefix('[')
            .and_then(|r| r.strip_suffix(']'))
            .ok_or_else(|| err(lineno, "unterminated array (arrays must be single-line)"))?;
        let mut items = Vec::new();
        for part in split_top_level_commas(inner) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            items.push(parse_string(part, lineno)?);
        }
        return Ok((key, Value::Array(items)));
    }
    Ok((key, Value::Str(parse_string(rest, lineno)?)))
}

fn split_top_level_commas(s: &str) -> Vec<&str> {
    let b = s.as_bytes();
    let mut parts = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'\\' if in_str => i += 1,
            b'"' => in_str = !in_str,
            b',' if !in_str => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    parts.push(&s[start..]);
    parts
}

fn parse_string(s: &str, lineno: u32) -> Result<String, ConfigError> {
    let inner = s
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| err(lineno, format!("expected a quoted string, got `{s}`")))?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some(other) => {
                    return Err(err(lineno, format!("unsupported escape `\\{other}`")));
                }
                None => return Err(err(lineno, "dangling backslash")),
            }
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

/// Render a ready-to-paste `[[allow]]` stanza for a finding (used by
/// `--fix-allowlist`).
pub fn allow_stanza(rule: &str, path: &str, contains: &str) -> String {
    let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    format!(
        "[[allow]]\nrule = \"{}\"\npath = \"{}\"\ncontains = \"{}\"\nreason = \"TODO: one-line justification\"\n",
        esc(rule),
        esc(path),
        esc(contains),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_document() {
        let cfg = Config::parse(
            r#"
# top comment
[global]
exclude = ["crates/lint/tests/fixtures/"]  # trailing comment

[rule.no-panic-paths]
include = ["crates/cli/", "crates/core/"]
exclude = ["crates/core/src/gen.rs"]

[[allow]]
rule = "no-panic-paths"
path = "crates/core/src/splits.rs"
contains = "panic!(\"no Table III split"
reason = "caller contract: machine names are validated upstream"
"#,
        )
        .unwrap();
        assert_eq!(cfg.global_exclude, vec!["crates/lint/tests/fixtures/"]);
        let scope = &cfg.rule_scopes["no-panic-paths"];
        assert_eq!(scope.include.as_deref().unwrap().len(), 2);
        assert_eq!(cfg.allow.len(), 1);
        assert_eq!(cfg.allow[0].contains.as_deref(), Some("panic!(\"no Table III split"));
    }

    #[test]
    fn reason_is_mandatory() {
        let doc = "[[allow]]\nrule = \"r\"\npath = \"p\"\n";
        let e = Config::parse(doc).unwrap_err();
        assert!(e.message.contains("missing `reason`"), "{e}");
    }

    #[test]
    fn unknown_sections_and_keys_error() {
        assert!(Config::parse("[wat]\n").is_err());
        assert!(Config::parse("[global]\nfoo = \"x\"\n").is_err());
        assert!(Config::parse("orphan = \"x\"\n").is_err());
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let doc = "[[allow]]\nrule = \"r\"\npath = \"p\"\ncontains = \"a # b\"\nreason = \"ok\"\n";
        let cfg = Config::parse(doc).unwrap();
        assert_eq!(cfg.allow[0].contains.as_deref(), Some("a # b"));
    }

    #[test]
    fn stanza_round_trips_through_parser() {
        let stanza = allow_stanza("no-lossy-cast", "crates/x.rs", "uid as u32");
        let cfg = Config::parse(&stanza.replace("TODO: one-line justification", "bounded"))
            .unwrap();
        assert_eq!(cfg.allow[0].rule, "no-lossy-cast");
        assert_eq!(cfg.allow[0].contains.as_deref(), Some("uid as u32"));
    }
}
