//! The rule registry.
//!
//! Every rule works on the token stream of a [`SourceFile`] — never on
//! raw text — and confines itself to the paths where its invariant
//! matters. Scopes are *substring* matches on the workspace-relative
//! path; the defaults below are overridable per rule in `lint.toml`
//! (`[rule.<name>] include/exclude`), and individual findings are
//! silenced only by a justified `[[allow]]` entry.
//!
//! Adding a rule: implement [`LintRule`], register it in
//! [`all_rules`], add a fixture pair under
//! `crates/lint/tests/fixtures/<rule>/`, and document it in
//! DESIGN.md §11.

use crate::config::Config;
use crate::lexer::TokKind;
use crate::syntax::Syntax;
use crate::{Finding, SourceFile};

/// A single static-analysis rule.
pub trait LintRule {
    /// Stable kebab-case name (the key used in `lint.toml`).
    fn name(&self) -> &'static str;
    /// One-line description for `mpcp-lint rules`.
    fn summary(&self) -> &'static str;
    /// Default path-substring scope; empty means "every file".
    fn default_include(&self) -> &'static [&'static str] {
        &[]
    }
    /// Default path-substring exclusions.
    fn default_exclude(&self) -> &'static [&'static str] {
        &[]
    }
    /// Per-file check.
    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>);
    /// Whole-workspace check (crate-level attribute requirements).
    fn check_workspace(&self, _files: &[SourceFile], _cfg: &Config, _out: &mut Vec<Finding>) {}
}

/// Is `file` in scope for `rule`, honoring `lint.toml` overrides?
pub fn in_scope(rule: &dyn LintRule, file: &SourceFile, cfg: &Config) -> bool {
    let scope = cfg.rule_scopes.get(rule.name());
    let include: Vec<&str> = match scope.and_then(|s| s.include.as_ref()) {
        Some(v) => v.iter().map(String::as_str).collect(),
        None => rule.default_include().to_vec(),
    };
    let exclude: Vec<&str> = match scope.and_then(|s| s.exclude.as_ref()) {
        Some(v) => v.iter().map(String::as_str).collect(),
        None => rule.default_exclude().to_vec(),
    };
    let included =
        include.is_empty() || include.iter().any(|p| file.rel_path.contains(p));
    included && !exclude.iter().any(|p| file.rel_path.contains(p))
}

/// All shipped rules, in catalog order.
pub fn all_rules() -> Vec<Box<dyn LintRule>> {
    vec![
        Box::new(NoFloatPartialOrder),
        Box::new(NoPanicPaths),
        Box::new(SafetyCommentRequired),
        Box::new(NoWallclockInDeterministic),
        Box::new(NoLossyCast),
        Box::new(OrderingCommentRequired),
        Box::new(NoRelaxedPublish),
        Box::new(NoLockAcrossBlocking),
    ]
}

/// Build a finding at a byte offset.
fn finding(
    rule: &'static str,
    file: &SourceFile,
    offset: usize,
    message: String,
) -> Finding {
    let (line, col) = file.lexed.line_col(offset);
    Finding {
        rule,
        path: file.rel_path.clone(),
        line,
        col,
        line_text: file.lexed.line_text(&file.text, offset).to_string(),
        message,
        allowed: None,
    }
}

/// Indices of non-comment tokens, in order.
fn code_indices(file: &SourceFile) -> Vec<usize> {
    (0..file.lexed.toks.len())
        .filter(|&i| {
            !matches!(
                file.lexed.toks[i].kind,
                TokKind::LineComment | TokKind::BlockComment
            )
        })
        .collect()
}

// ---------------------------------------------------------------------
// Rule 1: no-float-partial-order
// ---------------------------------------------------------------------

/// Float orderings must use `total_cmp`: `partial_cmp` on a NaN returns
/// `None` and a raw `<` in a comparator breaks totality, which turns a
/// degenerate model prediction into a panic (or, worse, an
/// order-dependent selection) instead of a deterministic ordering.
pub struct NoFloatPartialOrder;

const COMPARATOR_METHODS: &[&str] =
    &["sort_by", "sort_unstable_by", "min_by", "max_by", "binary_search_by"];
const ORDERING_OPS: &[&str] = &["<", ">", "<=", ">=", "==", "!="];

impl LintRule for NoFloatPartialOrder {
    fn name(&self) -> &'static str {
        "no-float-partial-order"
    }

    fn summary(&self) -> &'static str {
        "float orderings must use total_cmp, not partial_cmp or raw comparison operators"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        let code = code_indices(file);
        let toks = &file.lexed.toks;
        let txt = |ci: usize| file.tok_text(&toks[code[ci]]);
        for k in 0..code.len() {
            let t = &toks[code[k]];
            if file.in_test_code(t.start) {
                continue;
            }
            // `.partial_cmp(` / `T::partial_cmp` in call position.
            if t.kind == TokKind::Ident
                && txt(k) == "partial_cmp"
                && k > 0
                && matches!(txt(k - 1), "." | "::")
            {
                out.push(finding(
                    self.name(),
                    file,
                    t.start,
                    "partial_cmp yields None on NaN; use f64::total_cmp for a total, \
                     deterministic order"
                        .to_string(),
                ));
            }
            // Raw ordering operators inside a comparator closure:
            // `xs.sort_by(|a, b| a < b ...)` compiles but is not a
            // total order. Scan the balanced argument list.
            if t.kind == TokKind::Ident
                && COMPARATOR_METHODS.contains(&txt(k))
                && k > 0
                && txt(k - 1) == "."
                && k + 1 < code.len()
                && txt(k + 1) == "("
            {
                let mut depth = 1usize;
                let mut m = k + 2;
                while m < code.len() && depth > 0 {
                    match txt(m) {
                        "(" => depth += 1,
                        ")" => depth -= 1,
                        op if depth > 0 && ORDERING_OPS.contains(&op) => {
                            out.push(finding(
                                self.name(),
                                file,
                                toks[code[m]].start,
                                format!(
                                    "raw `{op}` inside a `{}` comparator is not a total \
                                     order on floats; use total_cmp",
                                    txt(k)
                                ),
                            ));
                        }
                        _ => {}
                    }
                    m += 1;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rule 2: no-panic-paths
// ---------------------------------------------------------------------

/// Library code in `cli`, `core`, and `ml` must return typed errors:
/// a panic in the selection path takes down the whole serving process,
/// and PR 3's graceful-degradation guarantees only hold if nothing
/// underneath them panics first. (Supersedes the PR 3 grep lint, which
/// could neither see `expect` nor tell code from comments.)
pub struct NoPanicPaths;

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

impl LintRule for NoPanicPaths {
    fn name(&self) -> &'static str {
        "no-panic-paths"
    }

    fn summary(&self) -> &'static str {
        "no unwrap/expect/panic! in non-test cli/core/ml code"
    }

    fn default_include(&self) -> &'static [&'static str] {
        &["crates/cli/src/", "crates/core/src/", "crates/ml/src/"]
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        let code = code_indices(file);
        let toks = &file.lexed.toks;
        let txt = |ci: usize| file.tok_text(&toks[code[ci]]);
        for k in 0..code.len() {
            let t = &toks[code[k]];
            if t.kind != TokKind::Ident || file.in_test_code(t.start) {
                continue;
            }
            let name = txt(k);
            if (name == "unwrap" || name == "expect") && k > 0 && txt(k - 1) == "." {
                out.push(finding(
                    self.name(),
                    file,
                    t.start,
                    format!(
                        ".{name}() panics on the error path; propagate a typed error \
                         (FitError / SelectorError) instead"
                    ),
                ));
            }
            if PANIC_MACROS.contains(&name) && k + 1 < code.len() && txt(k + 1) == "!" {
                out.push(finding(
                    self.name(),
                    file,
                    t.start,
                    format!("{name}! in library code aborts the serving process; return an error"),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rule 3: safety-comment-required
// ---------------------------------------------------------------------

/// `unsafe` is confined to the one crate with a measured need for it
/// (`ml`'s bounds-check-elided inference kernel), and every occurrence
/// must carry an adjacent `// SAFETY:` comment stating the invariant
/// that makes it sound. Crates with no unsafe must say so with
/// `#![forbid(unsafe_code)]` so a stray block is a compile error, not a
/// review hazard.
pub struct SafetyCommentRequired;

/// Crates permitted to contain `unsafe` (must carry
/// `#![deny(unsafe_op_in_unsafe_fn)]`).
const UNSAFE_CRATES: &[&str] = &["ml"];

impl LintRule for SafetyCommentRequired {
    fn name(&self) -> &'static str {
        "safety-comment-required"
    }

    fn summary(&self) -> &'static str {
        "unsafe only in allowlisted crates, always under a // SAFETY: comment"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        let toks = &file.lexed.toks;
        for t in toks {
            if t.kind != TokKind::Ident || file.tok_text(t) != "unsafe" {
                continue;
            }
            let crate_ok = file
                .crate_name
                .as_deref()
                .is_some_and(|c| UNSAFE_CRATES.contains(&c));
            if !crate_ok {
                out.push(finding(
                    self.name(),
                    file,
                    t.start,
                    "unsafe outside the allowlisted unsafe crates (ml); keep this crate \
                     #![forbid(unsafe_code)]"
                        .to_string(),
                ));
                continue;
            }
            if !has_adjacent_safety_comment(file, t.start) {
                out.push(finding(
                    self.name(),
                    file,
                    t.start,
                    "unsafe without a // SAFETY: comment on the preceding line(s) stating \
                     why it is sound"
                        .to_string(),
                ));
            }
        }
    }

    /// Crate-level attribute requirements: `#![forbid(unsafe_code)]`
    /// everywhere unsafe is banned, `#![deny(unsafe_op_in_unsafe_fn)]`
    /// where it is not.
    fn check_workspace(&self, files: &[SourceFile], cfg: &Config, out: &mut Vec<Finding>) {
        for file in files {
            if cfg.global_exclude.iter().any(|p| file.rel_path.contains(p.as_str())) {
                continue;
            }
            let Some(crate_name) = file.crate_name.as_deref() else { continue };
            if file.rel_path != format!("crates/{crate_name}/src/lib.rs") {
                continue;
            }
            if UNSAFE_CRATES.contains(&crate_name) {
                if !has_inner_attr(file, "deny", "unsafe_op_in_unsafe_fn") {
                    out.push(finding(
                        self.name(),
                        file,
                        0,
                        "unsafe-allowlisted crate must declare #![deny(unsafe_op_in_unsafe_fn)]"
                            .to_string(),
                    ));
                }
            } else if !has_inner_attr(file, "forbid", "unsafe_code") {
                out.push(finding(
                    self.name(),
                    file,
                    0,
                    "crate has no unsafe and must declare #![forbid(unsafe_code)]".to_string(),
                ));
            }
        }
    }
}

/// Scan upward from the line above `offset` through contiguous `//`
/// comment lines, looking for `SAFETY:`.
fn has_adjacent_safety_comment(file: &SourceFile, offset: usize) -> bool {
    let (line, _) = file.lexed.line_col(offset);
    let mut l = line.saturating_sub(1);
    while l >= 1 {
        let start = file.lexed.line_start(l);
        let text = file.lexed.line_text(&file.text, start);
        let trimmed = text.trim_start();
        if !trimmed.starts_with("//") {
            return false;
        }
        if trimmed.contains("SAFETY:") {
            return true;
        }
        l -= 1;
    }
    false
}

/// Does the file carry the inner attribute `#![<level>(<lint>)]`?
fn has_inner_attr(file: &SourceFile, level: &str, lint: &str) -> bool {
    let toks = &file.lexed.toks;
    let code: Vec<usize> = (0..toks.len())
        .filter(|&i| !matches!(toks[i].kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    let txt = |ci: usize| file.tok_text(&toks[code[ci]]);
    (0..code.len().saturating_sub(6)).any(|k| {
        txt(k) == "#"
            && txt(k + 1) == "!"
            && txt(k + 2) == "["
            && txt(k + 3) == level
            && txt(k + 4) == "("
            && txt(k + 5) == lint
            && txt(k + 6) == ")"
    })
}

// ---------------------------------------------------------------------
// Rule 4: no-wallclock-in-deterministic
// ---------------------------------------------------------------------

/// `benchmark`, `simnet`, `ml`, and `core` must be bit-deterministic:
/// given the same seed, the same records, models, and selections come
/// out — the paper's reproducibility claim and the fault-injection
/// harness's byte-identity guarantee both depend on it. Wall-clock
/// reads and thread-count-dependent control flow are how that breaks.
/// (Timing belongs in `mpcp-obs`, whose spans are no-ops unless tracing
/// is explicitly enabled.)
pub struct NoWallclockInDeterministic;

const WALLCLOCK_IDENTS: &[&str] = &["Instant", "SystemTime"];
const THREAD_COUNT_IDENTS: &[&str] = &["current_num_threads", "available_parallelism"];

impl LintRule for NoWallclockInDeterministic {
    fn name(&self) -> &'static str {
        "no-wallclock-in-deterministic"
    }

    fn summary(&self) -> &'static str {
        "determinism-critical crates never read clocks or depend on thread counts"
    }

    fn default_include(&self) -> &'static [&'static str] {
        &[
            "crates/benchmark/src/",
            "crates/simnet/src/",
            "crates/ml/src/",
            "crates/core/src/",
        ]
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        let toks = &file.lexed.toks;
        for t in toks {
            if t.kind != TokKind::Ident || file.in_test_code(t.start) {
                continue;
            }
            let name = file.tok_text(t);
            if WALLCLOCK_IDENTS.contains(&name) {
                out.push(finding(
                    self.name(),
                    file,
                    t.start,
                    format!(
                        "{name} is wall-clock state in a determinism-critical crate; \
                         route timing through mpcp-obs (no-op unless tracing is on)"
                    ),
                ));
            }
            if THREAD_COUNT_IDENTS.contains(&name) {
                out.push(finding(
                    self.name(),
                    file,
                    t.start,
                    format!(
                        "{name} makes behavior depend on the host's parallelism; results \
                         must be identical at any thread count"
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rule 5: no-lossy-cast
// ---------------------------------------------------------------------

/// Serialization paths (dataset records, CSV round-trips, selector uid
/// tables) must not truncate silently: an `as u32` that wraps corrupts
/// the dataset instead of erroring. Use `From`/`TryFrom` and propagate.
pub struct NoLossyCast;

/// Narrowing `as` targets. 64-bit targets and `usize` are not flagged:
/// on every supported platform they only widen the types these paths
/// use.
const NARROWING_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "f32"];

impl LintRule for NoLossyCast {
    fn name(&self) -> &'static str {
        "no-lossy-cast"
    }

    fn summary(&self) -> &'static str {
        "no truncating `as` casts in record/dataset/selector serialization paths"
    }

    fn default_include(&self) -> &'static [&'static str] {
        &[
            "crates/benchmark/src/record.rs",
            "crates/benchmark/src/datasets.rs",
            "crates/ml/src/dataset.rs",
            "crates/core/src/selector.rs",
            "crates/core/src/instance.rs",
            "crates/core/src/tuning_file.rs",
        ]
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        let code = code_indices(file);
        let toks = &file.lexed.toks;
        let txt = |ci: usize| file.tok_text(&toks[code[ci]]);
        for k in 0..code.len().saturating_sub(1) {
            let t = &toks[code[k]];
            if t.kind != TokKind::Ident || txt(k) != "as" || file.in_test_code(t.start) {
                continue;
            }
            let target = txt(k + 1);
            if toks[code[k + 1]].kind == TokKind::Ident
                && NARROWING_TARGETS.contains(&target)
            {
                out.push(finding(
                    self.name(),
                    file,
                    t.start,
                    format!(
                        "`as {target}` can truncate silently in a serialization path; \
                         use {target}::try_from (or From) and handle the error"
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rule 6: ordering-comment-required
// ---------------------------------------------------------------------

/// Every atomic operation that names an explicit memory ordering in the
/// lock-free modules must justify it: the seqlock windows, the flight
/// ring, the snapshot epochs, and the daemon's shutdown/admission flags
/// are all hand-rolled protocols whose correctness lives entirely in
/// *which* `Ordering` each site uses. Mirroring the SAFETY rule, an
/// adjacent `// ORDERING:` comment (same line, or a comment block
/// immediately above the statement — one comment covers a contiguous
/// run of atomic statements) states the pairing that makes it sound.
pub struct OrderingCommentRequired;

const MEMORY_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// The hand-rolled lock-free modules the ordering rules default to.
const LOCKFREE_MODULES: &[&str] = &[
    "crates/obs/src/window.rs",
    "crates/obs/src/flight.rs",
    "crates/serve/src/snapshot.rs",
    "crates/serve/src/net.rs",
    "crates/serve/src/batch.rs",
];

impl LintRule for OrderingCommentRequired {
    fn name(&self) -> &'static str {
        "ordering-comment-required"
    }

    fn summary(&self) -> &'static str {
        "explicit atomic Ordering in lock-free modules needs an adjacent // ORDERING: comment"
    }

    fn default_include(&self) -> &'static [&'static str] {
        LOCKFREE_MODULES
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        let code = code_indices(file);
        let toks = &file.lexed.toks;
        let txt = |ci: usize| file.tok_text(&toks[code[ci]]);
        let sites = ordering_sites(file, &code);
        // First atomic site per line, for the contiguous-cluster walk.
        let mut site_by_line: std::collections::BTreeMap<u32, usize> =
            std::collections::BTreeMap::new();
        for &k in &sites {
            let (line, _) = file.lexed.line_col(toks[code[k]].start);
            site_by_line.entry(line).or_insert(k);
        }
        for &k in &sites {
            let off = toks[code[k]].start;
            if file.in_test_code(off) {
                continue;
            }
            if has_ordering_justification(file, &code, k, &site_by_line) {
                continue;
            }
            out.push(finding(
                self.name(),
                file,
                off,
                format!(
                    "atomic op with explicit `Ordering::{}` has no adjacent // ORDERING: \
                     justification (same line, or a comment immediately above the statement)",
                    txt(k + 2)
                ),
            ));
        }
    }
}

/// Code indices of `Ordering` tokens in `Ordering::<memory-ordering>`
/// position.
fn ordering_sites(file: &SourceFile, code: &[usize]) -> Vec<usize> {
    let toks = &file.lexed.toks;
    let txt = |ci: usize| file.tok_text(&toks[code[ci]]);
    (0..code.len().saturating_sub(2))
        .filter(|&k| {
            toks[code[k]].kind == TokKind::Ident
                && txt(k) == "Ordering"
                && txt(k + 1) == "::"
                && MEMORY_ORDERINGS.contains(&txt(k + 2))
        })
        .collect()
}

/// First line of the statement containing code token `ci`: walk back to
/// the nearest `;`/`}`, or to a `{` that *opens a block* — a `{` with
/// an expression still in flight before it (struct literal, `if`/
/// `while`/`match` header, fn signature) is transparent, so a comment
/// above `let hs = HistSnapshot {` or above an `if` header covers the
/// atomics on the lines inside.
fn statement_first_line(file: &SourceFile, code: &[usize], ci: usize) -> u32 {
    let toks = &file.lexed.toks;
    let txt = |c: usize| file.tok_text(&toks[code[c]]);
    let mut k = ci;
    while k > 0 {
        match txt(k - 1) {
            ";" | "}" => break,
            "{" => {
                let opens_block = k < 2
                    || matches!(txt(k - 2), ";" | "{" | "}" | "=>" | "|" | "||")
                    || matches!(txt(k - 2), "else" | "loop" | "unsafe" | "move" | "try");
                if opens_block {
                    break;
                }
                k -= 1; // mid-statement `{`: keep walking
            }
            _ => k -= 1,
        }
    }
    file.lexed.line_col(toks[code[k]].start).0
}

/// Is the atomic site at code index `ci` covered by an `// ORDERING:`
/// comment? Accepted placements: a line comment on the same source
/// line, or a contiguous `//` block immediately above the statement (or
/// above the site's own line, for multi-line expressions like a stats
/// struct literal) — where "immediately above" may skip over earlier
/// statements that are themselves atomic sites, so one comment covers a
/// cluster of consecutive atomic statements (a seqlock write sequence,
/// a stats snapshot) without nine copies of itself.
fn has_ordering_justification(
    file: &SourceFile,
    code: &[usize],
    ci: usize,
    site_by_line: &std::collections::BTreeMap<u32, usize>,
) -> bool {
    let toks = &file.lexed.toks;
    let (site_line, _) = file.lexed.line_col(toks[code[ci]].start);
    // Trailing (or leading) comment on the atomic's own line.
    for t in &file.lexed.toks {
        if t.kind == TokKind::LineComment
            && file.lexed.line_col(t.start).0 == site_line
            && file.tok_text(t).contains("ORDERING:")
        {
            return true;
        }
    }
    // Upward search from both anchors: the statement's first line (a
    // comment above `let hs = HistSnapshot {` covers the loads inside)
    // and the site's own line (right when the "statement" is one big
    // tail expression whose first line is far above, e.g. a stats
    // struct literal returned from a fn).
    let mut work = vec![statement_first_line(file, code, ci), site_line];
    let mut seen = std::collections::BTreeSet::new();
    while let Some(l) = work.pop() {
        if l <= 1 || !seen.insert(l) {
            continue;
        }
        let above = l - 1;
        let line_start = file.lexed.line_start(above);
        let text = file.lexed.line_text(&file.text, line_start);
        let trimmed = text.trim_start();
        if trimmed.starts_with("//") {
            // Scan the contiguous comment block upward for the tag.
            let mut c = above;
            loop {
                let s = file.lexed.line_start(c);
                let t = file.lexed.line_text(&file.text, s);
                let tr = t.trim_start();
                if !tr.starts_with("//") {
                    break;
                }
                if tr.contains("ORDERING:") {
                    return true;
                }
                if c == 1 {
                    break;
                }
                c -= 1;
            }
            continue;
        }
        // Pure-closer lines (`}`, `});`) between atomic statements do
        // not break the cluster.
        if !trimmed.is_empty()
            && trimmed
                .chars()
                .all(|c| matches!(c, '}' | ')' | ']' | ';' | ',') || c.is_whitespace())
        {
            work.push(above);
            continue;
        }
        // A preceding atomic statement keeps the cluster alive: keep
        // walking up — from its own line and from its statement's
        // first line (it may itself sit mid-expression).
        if let Some(&k) = site_by_line.get(&above) {
            work.push(above);
            let stmt = statement_first_line(file, code, k);
            if stmt < l {
                work.push(stmt);
            }
        }
    }
    false
}

// ---------------------------------------------------------------------
// Rule 7: no-relaxed-publish
// ---------------------------------------------------------------------

/// `Ordering::Relaxed` on a store/RMW to a *publish word* — a
/// sequence/epoch counter whose value tells readers that other data is
/// ready — is the classic lock-free bug: the data writes can reorder
/// past the publication and readers observe torn state. Seqlock
/// sequence words and snapshot epochs must publish with `Release` (or
/// sit behind an explicit fence, in which case the site carries a
/// justified `[[allow]]`).
pub struct NoRelaxedPublish;

/// Receiver-ident fragments that mark a publish word. Matched
/// case-insensitively against the field/static being written.
const PUBLISH_IDENTS: &[&str] = &["seq", "sequence", "epoch"];

const ATOMIC_WRITE_METHODS: &[&str] = &[
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

impl LintRule for NoRelaxedPublish {
    fn name(&self) -> &'static str {
        "no-relaxed-publish"
    }

    fn summary(&self) -> &'static str {
        "seqlock/epoch publish words are never written with Ordering::Relaxed"
    }

    fn default_include(&self) -> &'static [&'static str] {
        &["crates/obs/src/", "crates/serve/src/", "crates/ml/src/"]
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        let code = code_indices(file);
        let toks = &file.lexed.toks;
        let txt = |ci: usize| file.tok_text(&toks[code[ci]]);
        for k in 2..code.len().saturating_sub(1) {
            let t = &toks[code[k]];
            if t.kind != TokKind::Ident
                || !ATOMIC_WRITE_METHODS.contains(&txt(k))
                || txt(k - 1) != "."
                || txt(k + 1) != "("
                || file.in_test_code(t.start)
            {
                continue;
            }
            let recv = txt(k - 2);
            let recv_lower = recv.to_ascii_lowercase();
            if toks[code[k - 2]].kind != TokKind::Ident
                || !PUBLISH_IDENTS.iter().any(|p| recv_lower.contains(p))
            {
                continue;
            }
            // Scan the balanced argument list for Ordering::Relaxed.
            let mut depth = 1usize;
            let mut m = k + 2;
            while m < code.len() && depth > 0 {
                match txt(m) {
                    "(" => depth += 1,
                    ")" => depth -= 1,
                    "Ordering"
                        if m + 2 < code.len()
                            && txt(m + 1) == "::"
                            && txt(m + 2) == "Relaxed" =>
                    {
                        out.push(finding(
                            self.name(),
                            file,
                            t.start,
                            format!(
                                "`{recv}.{}` with Ordering::Relaxed: `{recv}` looks like a \
                                 publish word (seq/epoch); readers may observe data writes \
                                 reordered past it — use Release (or justify the fence \
                                 protocol in an [[allow]])",
                                txt(k)
                            ),
                        ));
                        break;
                    }
                    _ => {}
                }
                m += 1;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rule 8: no-lock-across-blocking
// ---------------------------------------------------------------------

/// A `Mutex`/`RwLock` guard that stays live across a blocking call
/// (socket I/O, channel recv, condvar timeouts, thread joins) turns a
/// slow peer into a lock-convoy: every other thread needing that lock
/// waits on the network. The PR 8 daemon's threads-per-connection
/// design makes this the single easiest deadlock/latency wedge to
/// grow, so the rule walks each guard's binding scope (via the
/// [`Syntax`] block tree) and flags blocking calls before the guard
/// dies — unless the guard is handed *to* the call (condvar wait) or
/// explicitly `drop()`ed first. Closure bodies in between are skipped:
/// they run later, not under the guard.
pub struct NoLockAcrossBlocking;

const BLOCKING_CALLS: &[&str] = &[
    "write_all",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "flush",
    "recv",
    "recv_timeout",
    "recv_deadline",
    "wait",
    "wait_timeout",
    "wait_while",
    "wait_timeout_while",
    "connect",
    "accept",
    "join",
    "sleep",
];

impl LintRule for NoLockAcrossBlocking {
    fn name(&self) -> &'static str {
        "no-lock-across-blocking"
    }

    fn summary(&self) -> &'static str {
        "Mutex/RwLock guards must not stay live across blocking calls in the same block"
    }

    fn default_include(&self) -> &'static [&'static str] {
        &["crates/obs/src/", "crates/serve/src/"]
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        let syn = Syntax::parse(file);
        let toks = &file.lexed.toks;
        let txt = |ci: usize| file.tok_text(&toks[syn.code[ci]]);
        let kind = |ci: usize| toks[syn.code[ci]].kind;
        for lb in &syn.lets {
            let bind_off = toks[syn.code[lb.name_ci]].start;
            if file.in_test_code(bind_off) {
                continue;
            }
            let Some(semi) = lb.semi else { continue };
            if !init_is_guard_acquisition(&syn, file, lb.init_start, semi) {
                continue;
            }
            let (bind_line, _) = file.lexed.line_col(bind_off);
            let block_end = syn.blocks[lb.block].close.unwrap_or(syn.code.len());
            let mut k = semi + 1;
            while k < block_end {
                // Closure bodies execute later, not under the guard.
                if let Some(cb) = syn.closure_block_at(k) {
                    match syn.blocks[cb].close {
                        Some(c) => {
                            k = c + 1;
                            continue;
                        }
                        None => break,
                    }
                }
                // Token-level closure starts (`|x| expr`, `move || f()`)
                // that the block tree can't see (braceless bodies).
                if let Some(next) = skip_closure_expr(&syn, file, k) {
                    k = next;
                    continue;
                }
                let t = txt(k);
                // `drop(guard)` ends the live range — but only at the
                // binding's own nesting level: a drop inside one match
                // arm or `if` branch says nothing about the fallthrough
                // path that reaches the code below it.
                if kind(k) == TokKind::Ident
                    && t == "drop"
                    && k + 3 < syn.code.len()
                    && txt(k + 1) == "("
                    && txt(k + 2) == lb.name
                    && txt(k + 3) == ")"
                    && syn.block_of[k] == lb.block
                {
                    break;
                }
                if kind(k) == TokKind::Ident
                    && BLOCKING_CALLS.contains(&t)
                    && k > 0
                    && matches!(txt(k - 1), "." | "::")
                    && k + 1 < syn.code.len()
                    && txt(k + 1) == "("
                {
                    let close = syn
                        .matching_close(file, k + 1)
                        .unwrap_or(syn.code.len().saturating_sub(1));
                    // Guard handed to the call (condvar wait) releases it.
                    let consumed = (k + 2..close)
                        .any(|a| kind(a) == TokKind::Ident && txt(a) == lb.name);
                    if consumed {
                        k = close + 1;
                        continue;
                    }
                    out.push(finding(
                        self.name(),
                        file,
                        toks[syn.code[k]].start,
                        format!(
                            "guard `{}` (locked at line {bind_line}) is still live across \
                             blocking `{t}()`; drop it or scope it before blocking",
                            lb.name
                        ),
                    ));
                    break; // one finding per guard binding is enough
                }
                k += 1;
            }
        }
    }
}

/// Does `init_start..semi` bind a lock guard? True when the
/// initializer is a lock acquisition — `.lock()`, `.read()`, `.write()`
/// with empty args, or a free `lock(..)`/`lock_*(..)` helper —
/// optionally chained through `.unwrap()`/`.expect(..)`/
/// `.unwrap_or_else(..)`, and nothing else: `lock(&m).get(..)` is a
/// temporary that dies at the `;`, not a live guard.
fn init_is_guard_acquisition(
    syn: &Syntax,
    file: &SourceFile,
    init_start: usize,
    semi: usize,
) -> bool {
    let toks = &file.lexed.toks;
    let txt = |ci: usize| file.tok_text(&toks[syn.code[ci]]);
    let kind = |ci: usize| toks[syn.code[ci]].kind;
    for k in init_start..semi {
        if kind(k) != TokKind::Ident || k + 1 >= syn.code.len() || txt(k + 1) != "(" {
            continue;
        }
        let name = txt(k);
        let prev = if k > init_start { txt(k - 1) } else { "" };
        let is_method = prev == "."
            && matches!(name, "lock" | "read" | "write")
            && k + 2 < syn.code.len()
            && txt(k + 2) == ")";
        let is_free = prev != "." && (name == "lock" || name.starts_with("lock_"));
        if !is_method && !is_free {
            continue;
        }
        let Some(close) = syn.matching_close(file, k + 1) else { return false };
        let mut m = close + 1;
        while m + 2 < syn.code.len()
            && txt(m) == "."
            && matches!(txt(m + 1), "unwrap" | "expect" | "unwrap_or_else")
            && txt(m + 2) == "("
        {
            match syn.matching_close(file, m + 2) {
                Some(c) => m = c + 1,
                None => return false,
            }
        }
        return m == semi;
    }
    false
}

/// If code index `k` starts a closure expression (`|..| ..` or
/// `move |..| ..` — `k` at the opening `|`/`||`), return the code index
/// just past its body so guard scans skip the deferred code. Braced
/// bodies skip to the matching `}`; braceless bodies skip to the next
/// `,`/`;`/`)` at depth 0.
fn skip_closure_expr(syn: &Syntax, file: &SourceFile, k: usize) -> Option<usize> {
    let toks = &file.lexed.toks;
    let txt = |ci: usize| file.tok_text(&toks[syn.code[ci]]);
    let params_close = match txt(k) {
        "||" => k,
        "|" => {
            // Only in closure-head position: after `(`/`,`/`=`/`=>`/
            // `;`/`{`/`move`/`return` — a `|` after an operand is
            // bitwise-or.
            let prev = if k > 0 { txt(k - 1) } else { "" };
            if !matches!(prev, "(" | "," | "=" | "=>" | ";" | "{" | "move" | "return") {
                return None;
            }
            let mut m = k + 1;
            loop {
                if m >= syn.code.len() {
                    return None;
                }
                if txt(m) == "|" {
                    break m;
                }
                // Param lists hold patterns/types, never blocks.
                if matches!(txt(m), "{" | "}" | ";") {
                    return None;
                }
                m += 1;
            }
        }
        _ => return None,
    };
    let mut b = params_close + 1;
    // Optional `-> Type` before a braced body.
    if b < syn.code.len() && txt(b) == "->" {
        while b < syn.code.len() && txt(b) != "{" {
            if matches!(txt(b), ";" | ")") {
                return None;
            }
            b += 1;
        }
    }
    if b < syn.code.len() && txt(b) == "{" {
        return syn.matching_close(file, b).map(|c| c + 1);
    }
    // Braceless body: runs to the next `,`/`;`/`)` at depth 0.
    let mut depth = 0usize;
    let mut m = b;
    while m < syn.code.len() {
        match txt(m) {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" if depth == 0 => return Some(m),
            ")" | "]" | "}" => depth -= 1,
            "," | ";" if depth == 0 => return Some(m),
            _ => {}
        }
        m += 1;
    }
    Some(m)
}
