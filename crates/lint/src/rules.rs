//! The rule registry.
//!
//! Every rule works on the token stream of a [`SourceFile`] — never on
//! raw text — and confines itself to the paths where its invariant
//! matters. Scopes are *substring* matches on the workspace-relative
//! path; the defaults below are overridable per rule in `lint.toml`
//! (`[rule.<name>] include/exclude`), and individual findings are
//! silenced only by a justified `[[allow]]` entry.
//!
//! Adding a rule: implement [`LintRule`], register it in
//! [`all_rules`], add a fixture pair under
//! `crates/lint/tests/fixtures/<rule>/`, and document it in
//! DESIGN.md §11.

use crate::config::Config;
use crate::lexer::TokKind;
use crate::{Finding, SourceFile};

/// A single static-analysis rule.
pub trait LintRule {
    /// Stable kebab-case name (the key used in `lint.toml`).
    fn name(&self) -> &'static str;
    /// One-line description for `mpcp-lint rules`.
    fn summary(&self) -> &'static str;
    /// Default path-substring scope; empty means "every file".
    fn default_include(&self) -> &'static [&'static str] {
        &[]
    }
    /// Default path-substring exclusions.
    fn default_exclude(&self) -> &'static [&'static str] {
        &[]
    }
    /// Per-file check.
    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>);
    /// Whole-workspace check (crate-level attribute requirements).
    fn check_workspace(&self, _files: &[SourceFile], _cfg: &Config, _out: &mut Vec<Finding>) {}
}

/// Is `file` in scope for `rule`, honoring `lint.toml` overrides?
pub fn in_scope(rule: &dyn LintRule, file: &SourceFile, cfg: &Config) -> bool {
    let scope = cfg.rule_scopes.get(rule.name());
    let include: Vec<&str> = match scope.and_then(|s| s.include.as_ref()) {
        Some(v) => v.iter().map(String::as_str).collect(),
        None => rule.default_include().to_vec(),
    };
    let exclude: Vec<&str> = match scope.and_then(|s| s.exclude.as_ref()) {
        Some(v) => v.iter().map(String::as_str).collect(),
        None => rule.default_exclude().to_vec(),
    };
    let included =
        include.is_empty() || include.iter().any(|p| file.rel_path.contains(p));
    included && !exclude.iter().any(|p| file.rel_path.contains(p))
}

/// All shipped rules, in catalog order.
pub fn all_rules() -> Vec<Box<dyn LintRule>> {
    vec![
        Box::new(NoFloatPartialOrder),
        Box::new(NoPanicPaths),
        Box::new(SafetyCommentRequired),
        Box::new(NoWallclockInDeterministic),
        Box::new(NoLossyCast),
    ]
}

/// Build a finding at a byte offset.
fn finding(
    rule: &'static str,
    file: &SourceFile,
    offset: usize,
    message: String,
) -> Finding {
    let (line, col) = file.lexed.line_col(offset);
    Finding {
        rule,
        path: file.rel_path.clone(),
        line,
        col,
        line_text: file.lexed.line_text(&file.text, offset).to_string(),
        message,
        allowed: None,
    }
}

/// Indices of non-comment tokens, in order.
fn code_indices(file: &SourceFile) -> Vec<usize> {
    (0..file.lexed.toks.len())
        .filter(|&i| {
            !matches!(
                file.lexed.toks[i].kind,
                TokKind::LineComment | TokKind::BlockComment
            )
        })
        .collect()
}

// ---------------------------------------------------------------------
// Rule 1: no-float-partial-order
// ---------------------------------------------------------------------

/// Float orderings must use `total_cmp`: `partial_cmp` on a NaN returns
/// `None` and a raw `<` in a comparator breaks totality, which turns a
/// degenerate model prediction into a panic (or, worse, an
/// order-dependent selection) instead of a deterministic ordering.
pub struct NoFloatPartialOrder;

const COMPARATOR_METHODS: &[&str] =
    &["sort_by", "sort_unstable_by", "min_by", "max_by", "binary_search_by"];
const ORDERING_OPS: &[&str] = &["<", ">", "<=", ">=", "==", "!="];

impl LintRule for NoFloatPartialOrder {
    fn name(&self) -> &'static str {
        "no-float-partial-order"
    }

    fn summary(&self) -> &'static str {
        "float orderings must use total_cmp, not partial_cmp or raw comparison operators"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        let code = code_indices(file);
        let toks = &file.lexed.toks;
        let txt = |ci: usize| file.tok_text(&toks[code[ci]]);
        for k in 0..code.len() {
            let t = &toks[code[k]];
            if file.in_test_code(t.start) {
                continue;
            }
            // `.partial_cmp(` / `T::partial_cmp` in call position.
            if t.kind == TokKind::Ident
                && txt(k) == "partial_cmp"
                && k > 0
                && matches!(txt(k - 1), "." | "::")
            {
                out.push(finding(
                    self.name(),
                    file,
                    t.start,
                    "partial_cmp yields None on NaN; use f64::total_cmp for a total, \
                     deterministic order"
                        .to_string(),
                ));
            }
            // Raw ordering operators inside a comparator closure:
            // `xs.sort_by(|a, b| a < b ...)` compiles but is not a
            // total order. Scan the balanced argument list.
            if t.kind == TokKind::Ident
                && COMPARATOR_METHODS.contains(&txt(k))
                && k > 0
                && txt(k - 1) == "."
                && k + 1 < code.len()
                && txt(k + 1) == "("
            {
                let mut depth = 1usize;
                let mut m = k + 2;
                while m < code.len() && depth > 0 {
                    match txt(m) {
                        "(" => depth += 1,
                        ")" => depth -= 1,
                        op if depth > 0 && ORDERING_OPS.contains(&op) => {
                            out.push(finding(
                                self.name(),
                                file,
                                toks[code[m]].start,
                                format!(
                                    "raw `{op}` inside a `{}` comparator is not a total \
                                     order on floats; use total_cmp",
                                    txt(k)
                                ),
                            ));
                        }
                        _ => {}
                    }
                    m += 1;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rule 2: no-panic-paths
// ---------------------------------------------------------------------

/// Library code in `cli`, `core`, and `ml` must return typed errors:
/// a panic in the selection path takes down the whole serving process,
/// and PR 3's graceful-degradation guarantees only hold if nothing
/// underneath them panics first. (Supersedes the PR 3 grep lint, which
/// could neither see `expect` nor tell code from comments.)
pub struct NoPanicPaths;

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

impl LintRule for NoPanicPaths {
    fn name(&self) -> &'static str {
        "no-panic-paths"
    }

    fn summary(&self) -> &'static str {
        "no unwrap/expect/panic! in non-test cli/core/ml code"
    }

    fn default_include(&self) -> &'static [&'static str] {
        &["crates/cli/src/", "crates/core/src/", "crates/ml/src/"]
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        let code = code_indices(file);
        let toks = &file.lexed.toks;
        let txt = |ci: usize| file.tok_text(&toks[code[ci]]);
        for k in 0..code.len() {
            let t = &toks[code[k]];
            if t.kind != TokKind::Ident || file.in_test_code(t.start) {
                continue;
            }
            let name = txt(k);
            if (name == "unwrap" || name == "expect") && k > 0 && txt(k - 1) == "." {
                out.push(finding(
                    self.name(),
                    file,
                    t.start,
                    format!(
                        ".{name}() panics on the error path; propagate a typed error \
                         (FitError / SelectorError) instead"
                    ),
                ));
            }
            if PANIC_MACROS.contains(&name) && k + 1 < code.len() && txt(k + 1) == "!" {
                out.push(finding(
                    self.name(),
                    file,
                    t.start,
                    format!("{name}! in library code aborts the serving process; return an error"),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rule 3: safety-comment-required
// ---------------------------------------------------------------------

/// `unsafe` is confined to the one crate with a measured need for it
/// (`ml`'s bounds-check-elided inference kernel), and every occurrence
/// must carry an adjacent `// SAFETY:` comment stating the invariant
/// that makes it sound. Crates with no unsafe must say so with
/// `#![forbid(unsafe_code)]` so a stray block is a compile error, not a
/// review hazard.
pub struct SafetyCommentRequired;

/// Crates permitted to contain `unsafe` (must carry
/// `#![deny(unsafe_op_in_unsafe_fn)]`).
const UNSAFE_CRATES: &[&str] = &["ml"];

impl LintRule for SafetyCommentRequired {
    fn name(&self) -> &'static str {
        "safety-comment-required"
    }

    fn summary(&self) -> &'static str {
        "unsafe only in allowlisted crates, always under a // SAFETY: comment"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        let toks = &file.lexed.toks;
        for t in toks {
            if t.kind != TokKind::Ident || file.tok_text(t) != "unsafe" {
                continue;
            }
            let crate_ok = file
                .crate_name
                .as_deref()
                .is_some_and(|c| UNSAFE_CRATES.contains(&c));
            if !crate_ok {
                out.push(finding(
                    self.name(),
                    file,
                    t.start,
                    "unsafe outside the allowlisted unsafe crates (ml); keep this crate \
                     #![forbid(unsafe_code)]"
                        .to_string(),
                ));
                continue;
            }
            if !has_adjacent_safety_comment(file, t.start) {
                out.push(finding(
                    self.name(),
                    file,
                    t.start,
                    "unsafe without a // SAFETY: comment on the preceding line(s) stating \
                     why it is sound"
                        .to_string(),
                ));
            }
        }
    }

    /// Crate-level attribute requirements: `#![forbid(unsafe_code)]`
    /// everywhere unsafe is banned, `#![deny(unsafe_op_in_unsafe_fn)]`
    /// where it is not.
    fn check_workspace(&self, files: &[SourceFile], cfg: &Config, out: &mut Vec<Finding>) {
        for file in files {
            if cfg.global_exclude.iter().any(|p| file.rel_path.contains(p.as_str())) {
                continue;
            }
            let Some(crate_name) = file.crate_name.as_deref() else { continue };
            if file.rel_path != format!("crates/{crate_name}/src/lib.rs") {
                continue;
            }
            if UNSAFE_CRATES.contains(&crate_name) {
                if !has_inner_attr(file, "deny", "unsafe_op_in_unsafe_fn") {
                    out.push(finding(
                        self.name(),
                        file,
                        0,
                        "unsafe-allowlisted crate must declare #![deny(unsafe_op_in_unsafe_fn)]"
                            .to_string(),
                    ));
                }
            } else if !has_inner_attr(file, "forbid", "unsafe_code") {
                out.push(finding(
                    self.name(),
                    file,
                    0,
                    "crate has no unsafe and must declare #![forbid(unsafe_code)]".to_string(),
                ));
            }
        }
    }
}

/// Scan upward from the line above `offset` through contiguous `//`
/// comment lines, looking for `SAFETY:`.
fn has_adjacent_safety_comment(file: &SourceFile, offset: usize) -> bool {
    let (line, _) = file.lexed.line_col(offset);
    let mut l = line.saturating_sub(1);
    while l >= 1 {
        let start = file.lexed.line_start(l);
        let text = file.lexed.line_text(&file.text, start);
        let trimmed = text.trim_start();
        if !trimmed.starts_with("//") {
            return false;
        }
        if trimmed.contains("SAFETY:") {
            return true;
        }
        l -= 1;
    }
    false
}

/// Does the file carry the inner attribute `#![<level>(<lint>)]`?
fn has_inner_attr(file: &SourceFile, level: &str, lint: &str) -> bool {
    let toks = &file.lexed.toks;
    let code: Vec<usize> = (0..toks.len())
        .filter(|&i| !matches!(toks[i].kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    let txt = |ci: usize| file.tok_text(&toks[code[ci]]);
    (0..code.len().saturating_sub(6)).any(|k| {
        txt(k) == "#"
            && txt(k + 1) == "!"
            && txt(k + 2) == "["
            && txt(k + 3) == level
            && txt(k + 4) == "("
            && txt(k + 5) == lint
            && txt(k + 6) == ")"
    })
}

// ---------------------------------------------------------------------
// Rule 4: no-wallclock-in-deterministic
// ---------------------------------------------------------------------

/// `benchmark`, `simnet`, `ml`, and `core` must be bit-deterministic:
/// given the same seed, the same records, models, and selections come
/// out — the paper's reproducibility claim and the fault-injection
/// harness's byte-identity guarantee both depend on it. Wall-clock
/// reads and thread-count-dependent control flow are how that breaks.
/// (Timing belongs in `mpcp-obs`, whose spans are no-ops unless tracing
/// is explicitly enabled.)
pub struct NoWallclockInDeterministic;

const WALLCLOCK_IDENTS: &[&str] = &["Instant", "SystemTime"];
const THREAD_COUNT_IDENTS: &[&str] = &["current_num_threads", "available_parallelism"];

impl LintRule for NoWallclockInDeterministic {
    fn name(&self) -> &'static str {
        "no-wallclock-in-deterministic"
    }

    fn summary(&self) -> &'static str {
        "determinism-critical crates never read clocks or depend on thread counts"
    }

    fn default_include(&self) -> &'static [&'static str] {
        &[
            "crates/benchmark/src/",
            "crates/simnet/src/",
            "crates/ml/src/",
            "crates/core/src/",
        ]
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        let toks = &file.lexed.toks;
        for t in toks {
            if t.kind != TokKind::Ident || file.in_test_code(t.start) {
                continue;
            }
            let name = file.tok_text(t);
            if WALLCLOCK_IDENTS.contains(&name) {
                out.push(finding(
                    self.name(),
                    file,
                    t.start,
                    format!(
                        "{name} is wall-clock state in a determinism-critical crate; \
                         route timing through mpcp-obs (no-op unless tracing is on)"
                    ),
                ));
            }
            if THREAD_COUNT_IDENTS.contains(&name) {
                out.push(finding(
                    self.name(),
                    file,
                    t.start,
                    format!(
                        "{name} makes behavior depend on the host's parallelism; results \
                         must be identical at any thread count"
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rule 5: no-lossy-cast
// ---------------------------------------------------------------------

/// Serialization paths (dataset records, CSV round-trips, selector uid
/// tables) must not truncate silently: an `as u32` that wraps corrupts
/// the dataset instead of erroring. Use `From`/`TryFrom` and propagate.
pub struct NoLossyCast;

/// Narrowing `as` targets. 64-bit targets and `usize` are not flagged:
/// on every supported platform they only widen the types these paths
/// use.
const NARROWING_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "f32"];

impl LintRule for NoLossyCast {
    fn name(&self) -> &'static str {
        "no-lossy-cast"
    }

    fn summary(&self) -> &'static str {
        "no truncating `as` casts in record/dataset/selector serialization paths"
    }

    fn default_include(&self) -> &'static [&'static str] {
        &[
            "crates/benchmark/src/record.rs",
            "crates/benchmark/src/datasets.rs",
            "crates/ml/src/dataset.rs",
            "crates/core/src/selector.rs",
            "crates/core/src/instance.rs",
            "crates/core/src/tuning_file.rs",
        ]
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        let code = code_indices(file);
        let toks = &file.lexed.toks;
        let txt = |ci: usize| file.tok_text(&toks[code[ci]]);
        for k in 0..code.len().saturating_sub(1) {
            let t = &toks[code[k]];
            if t.kind != TokKind::Ident || txt(k) != "as" || file.in_test_code(t.start) {
                continue;
            }
            let target = txt(k + 1);
            if toks[code[k + 1]].kind == TokKind::Ident
                && NARROWING_TARGETS.contains(&target)
            {
                out.push(finding(
                    self.name(),
                    file,
                    t.start,
                    format!(
                        "`as {target}` can truncate silently in a serialization path; \
                         use {target}::try_from (or From) and handle the error"
                    ),
                ));
            }
        }
    }
}
