//! # mpcp-lint — repo-aware static analysis for the mpcp workspace
//!
//! The bench → train → select pipeline is only trustworthy if it is
//! bit-deterministic and NaN-sound end to end (the paper's
//! no-per-machine-tuning claim rests on it). Earlier PRs established
//! those invariants by hand — a `total_cmp` sweep, an unwrap audit, a
//! salted-RNG discipline. This crate *enforces* them: a token-level
//! Rust lexer (no false positives from grep hitting comments or string
//! literals) feeds a small registry of rules, each scoped to the paths
//! where its invariant matters and overridable only through a
//! checked-in [`config::Config`] (`lint.toml`) whose every exception
//! carries a written justification.
//!
//! Rule catalog (see `rules` for the implementations):
//!
//! | rule | invariant |
//! |------|-----------|
//! | `no-float-partial-order` | float orderings go through `total_cmp` |
//! | `no-panic-paths` | cli/core/ml library code returns errors, never panics |
//! | `safety-comment-required` | `unsafe` stays in `ml`, always justified |
//! | `no-wallclock-in-deterministic` | determinism-critical crates never read clocks |
//! | `no-lossy-cast` | serialization paths never truncate silently |
//! | `ordering-comment-required` | every explicit atomic `Ordering` is justified |
//! | `no-relaxed-publish` | publish words (seq/epoch) never written `Relaxed` |
//! | `no-lock-across-blocking` | no Mutex/RwLock guard held across blocking calls |
//!
//! The last three ride on [`syntax`], a recursive-descent structural
//! layer (block tree, fn items, let-binding scopes) recovered from the
//! same token stream — still zero-dependency, still total on soup.
//!
//! Run it with `cargo run -p mpcp-lint -- check`; the whole workspace
//! lexes and checks in well under a second.

#![forbid(unsafe_code)]

pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod syntax;

use std::path::{Path, PathBuf};

use config::{AllowEntry, Config};
use lexer::{lex, Lexed, Tok, TokKind};

/// A source file prepared for rule checks.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (the form paths take
    /// in `lint.toml` and diagnostics).
    pub rel_path: String,
    /// Crate name (`ml` for `crates/ml/...`), when under `crates/`.
    pub crate_name: Option<String>,
    pub text: String,
    pub lexed: Lexed,
    /// Byte ranges of `#[cfg(test)]` / `#[test]` items (plus the whole
    /// file for `tests/`, `benches/`, `examples/` trees): rules that
    /// police *production* code skip findings inside these.
    test_spans: Vec<(usize, usize)>,
}

impl SourceFile {
    /// Prepare a file from its path and contents.
    pub fn new(rel_path: impl Into<String>, text: impl Into<String>) -> SourceFile {
        let rel_path = rel_path.into().replace('\\', "/");
        let text = text.into();
        let lexed = lex(&text);
        let crate_name = rel_path
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
            .map(str::to_string);
        let whole_file_is_test = ["/tests/", "/benches/", "/examples/"]
            .iter()
            .any(|d| rel_path.contains(d))
            || rel_path.starts_with("tests/")
            || rel_path.starts_with("examples/");
        let test_spans = if whole_file_is_test {
            vec![(0, text.len())]
        } else {
            find_test_spans(&text, &lexed)
        };
        SourceFile { rel_path, crate_name, text, lexed, test_spans }
    }

    /// Token text.
    pub fn tok_text(&self, t: &Tok) -> &str {
        self.text.get(t.start..t.end).unwrap_or("")
    }

    /// Is this byte offset inside test-only code?
    pub fn in_test_code(&self, offset: usize) -> bool {
        self.test_spans.iter().any(|&(s, e)| (s..e).contains(&offset))
    }
}

/// Locate `#[cfg(test)]`- and `#[test]`-attributed items: the span runs
/// from the attribute to the matching `}` of the item's block (brace
/// balancing is exact because strings and comments are single tokens,
/// so a `{` inside either can never unbalance the count).
fn find_test_spans(text: &str, lexed: &Lexed) -> Vec<(usize, usize)> {
    let toks = &lexed.toks;
    // Rule checks only care about code; comments are invisible here.
    let code: Vec<usize> = (0..toks.len())
        .filter(|&i| !matches!(toks[i].kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    let txt = |ci: usize| text.get(toks[code[ci]].start..toks[code[ci]].end).unwrap_or("");
    let mut spans: Vec<(usize, usize)> = Vec::new();
    let mut k = 0;
    while k < code.len() {
        let Some(after_attr) = match_test_attr(&code, k, &txt) else {
            k += 1;
            continue;
        };
        let attr_start = toks[code[k]].start;
        // Find the item's opening `{`, then its matching `}`. An item
        // with no block before the next `;` (e.g. `#[cfg(test)] use x;`)
        // spans to that `;`.
        let mut j = after_attr;
        let mut end_off = toks.last().map(|t| t.end).unwrap_or(text.len());
        let mut resume = code.len();
        while j < code.len() {
            match txt(j) {
                ";" => {
                    end_off = toks[code[j]].end;
                    resume = j + 1;
                    break;
                }
                "{" => {
                    let mut depth = 1usize;
                    let mut m = j + 1;
                    while m < code.len() && depth > 0 {
                        match txt(m) {
                            "{" => depth += 1,
                            "}" => depth -= 1,
                            _ => {}
                        }
                        m += 1;
                    }
                    end_off = if m > 0 && m <= code.len() {
                        toks[code[m - 1]].end
                    } else {
                        text.len()
                    };
                    resume = m;
                    break;
                }
                _ => j += 1,
            }
        }
        spans.push((attr_start, end_off));
        k = resume.max(k + 1);
    }
    spans
}

/// Does the code-token window starting at `k` spell `#[cfg(test)]` or
/// `#[test]`? Returns the code index just past the closing `]`.
fn match_test_attr<'t>(
    code: &[usize],
    k: usize,
    txt: &impl Fn(usize) -> &'t str,
) -> Option<usize> {
    if txt(k) != "#" || k + 1 >= code.len() || txt(k + 1) != "[" {
        return None;
    }
    // `#[test]`
    if k + 3 < code.len() && txt(k + 2) == "test" && txt(k + 3) == "]" {
        return Some(k + 4);
    }
    // `#[cfg(test)]`
    if k + 6 < code.len()
        && txt(k + 2) == "cfg"
        && txt(k + 3) == "("
        && txt(k + 4) == "test"
        && txt(k + 5) == ")"
        && txt(k + 6) == "]"
    {
        return Some(k + 7);
    }
    None
}

/// One rule violation.
#[derive(Clone, Debug)]
pub struct Finding {
    pub rule: &'static str,
    pub path: String,
    pub line: u32,
    pub col: u32,
    /// The full source line, for diff-style output and `contains`
    /// matching in the allowlist.
    pub line_text: String,
    pub message: String,
    /// `Some(reason)` when an allowlist entry covers this finding.
    pub allowed: Option<String>,
}

/// Result of linting a set of files.
#[derive(Debug, Default)]
pub struct LintReport {
    pub findings: Vec<Finding>,
    pub files_checked: usize,
    /// Indices into `Config::allow` that never matched a finding —
    /// stale exceptions worth deleting.
    pub unused_allows: Vec<AllowEntry>,
}

impl LintReport {
    /// Findings not covered by the allowlist (these fail the build).
    pub fn violations(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.allowed.is_none())
    }

    /// Count of non-allowed findings.
    pub fn violation_count(&self) -> usize {
        self.violations().count()
    }
}

/// Lint prepared files against the config. Pure — no filesystem access
/// — so fixture tests drive it directly.
pub fn lint_files(files: &[SourceFile], cfg: &Config) -> LintReport {
    let mut findings = Vec::new();
    let registry = rules::all_rules();
    for file in files {
        if cfg.global_exclude.iter().any(|p| file.rel_path.contains(p.as_str())) {
            continue;
        }
        for rule in &registry {
            if !rules::in_scope(rule.as_ref(), file, cfg) {
                continue;
            }
            rule.check(file, &mut findings);
        }
    }
    for rule in &registry {
        rule.check_workspace(files, cfg, &mut findings);
    }
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
    // Match findings against the allowlist.
    let mut used = vec![false; cfg.allow.len()];
    for f in &mut findings {
        for (i, a) in cfg.allow.iter().enumerate() {
            let rule_ok = a.rule == f.rule;
            let path_ok = f.path == a.path
                || (a.path.ends_with('/') && f.path.starts_with(a.path.as_str()));
            let contains_ok =
                a.contains.as_deref().is_none_or(|c| f.line_text.contains(c));
            if rule_ok && path_ok && contains_ok {
                f.allowed = Some(a.reason.clone());
                used[i] = true;
                break;
            }
        }
    }
    let unused_allows = cfg
        .allow
        .iter()
        .zip(&used)
        .filter(|(_, &u)| !u)
        .map(|(a, _)| a.clone())
        .collect();
    LintReport { findings, files_checked: files.len(), unused_allows }
}

/// Collect every `.rs` file under `<root>/crates` (the workspace's own
/// code — `vendor/` shims and `target/` are out of scope), plus any
/// top-level `tests/` and `examples/` trees.
pub fn collect_workspace(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut paths: Vec<PathBuf> = Vec::new();
    for top in ["crates", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut paths)?;
        }
    }
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for p in paths {
        let rel = p
            .strip_prefix(root)
            .unwrap_or(&p)
            .to_string_lossy()
            .replace('\\', "/");
        let text = std::fs::read_to_string(&p)?;
        files.push(SourceFile::new(rel, text));
    }
    Ok(files)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint the whole workspace rooted at `root` with the given config.
pub fn lint_workspace(root: &Path, cfg: &Config) -> std::io::Result<LintReport> {
    let files = collect_workspace(root)?;
    Ok(lint_files(&files, cfg))
}
