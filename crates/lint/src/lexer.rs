//! A token-level lexer for Rust source.
//!
//! `mpcp-lint` rules reason about *tokens*, not raw text, so a
//! `partial_cmp` inside a doc comment, a string literal, or a nested
//! block comment is never a finding — the failure mode that makes
//! grep-based lints untrustworthy. The lexer is deliberately lossy
//! about things the rules never look at (it does not distinguish
//! keywords from identifiers, or classify every multi-character
//! operator), but it is exact about the hard part: where comments,
//! strings, character literals, and lifetimes begin and end.
//!
//! Guarantees (property-tested in `tests/lexer_props.rs`):
//!
//! * lexing never panics, on any input;
//! * token spans are in bounds, non-empty, strictly ascending, and
//!   non-overlapping;
//! * every non-whitespace byte of the input is covered by exactly one
//!   token (whitespace is the only gap material).

/// What a token is, at the granularity the rules need.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `fn`, `partial_cmp`, ...).
    Ident,
    /// Lifetime (`'a`, `'static`, `'_`).
    Lifetime,
    /// Character literal (`'a'`, `'\n'`).
    Char,
    /// String-like literal: `"..."`, `r#"..."#`, `b"..."`, `br"..."`,
    /// and byte-char literals (`b'q'`), which no rule distinguishes.
    Str,
    /// Numeric literal; `float` is true for literals with a fractional
    /// part, a decimal exponent, or an `f32`/`f64` suffix.
    Num { float: bool },
    /// `// ...` comment (includes `///` and `//!` doc comments).
    LineComment,
    /// `/* ... */` comment, nesting handled.
    BlockComment,
    /// Punctuation. A small set of two-character operators (`::`,
    /// `==`, `!=`, `<=`, `>=`, `->`, `=>`, `..`, `&&`, `||`) lex as a
    /// single token; everything else is one byte.
    Punct,
}

/// One token: kind plus byte span into the source.
#[derive(Clone, Copy, Debug)]
pub struct Tok {
    pub kind: TokKind,
    pub start: usize,
    pub end: usize,
}

/// A lexed file: tokens plus a line table for diagnostics.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    /// Byte offset of the start of each line (line 1 starts at 0).
    line_starts: Vec<usize>,
}

impl Lexed {
    /// 1-based (line, column) of a byte offset.
    pub fn line_col(&self, offset: usize) -> (u32, u32) {
        let line = self.line_starts.partition_point(|&s| s <= offset);
        let start = if line == 0 { 0 } else { self.line_starts[line - 1] };
        (line as u32, (offset - start) as u32 + 1)
    }

    /// The full text of the 1-based line containing `offset`.
    pub fn line_text<'s>(&self, src: &'s str, offset: usize) -> &'s str {
        let line = self.line_starts.partition_point(|&s| s <= offset);
        let start = if line == 0 { 0 } else { self.line_starts[line - 1] };
        let end = self.line_starts.get(line).copied().unwrap_or(src.len());
        src.get(start..end).unwrap_or("").trim_end_matches(['\n', '\r'])
    }

    /// Byte offset where the given 1-based line starts.
    pub fn line_start(&self, line: u32) -> usize {
        self.line_starts.get(line.saturating_sub(1) as usize).copied().unwrap_or(0)
    }

    /// Number of lines.
    pub fn num_lines(&self) -> usize {
        self.line_starts.len()
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

/// Lex a source file. Total: always terminates, never panics, and
/// produces a token stream even for malformed input (an unterminated
/// string or comment simply runs to end of file).
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let n = b.len();
    let mut line_starts = vec![0usize];
    for (i, &c) in b.iter().enumerate() {
        if c == b'\n' && i + 1 < n {
            line_starts.push(i + 1);
        }
    }
    let mut toks = Vec::new();
    let mut i = 0usize;
    while i < n {
        let c = b[i];
        // Whitespace is the only gap material between tokens.
        if c == b' ' || c == b'\t' || c == b'\r' || c == b'\n' {
            i += 1;
            continue;
        }
        let start = i;
        let kind = if c == b'/' && b.get(i + 1) == Some(&b'/') {
            while i < n && b[i] != b'\n' {
                i += 1;
            }
            TokKind::LineComment
        } else if c == b'/' && b.get(i + 1) == Some(&b'*') {
            i += 2;
            let mut depth = 1usize;
            while i < n && depth > 0 {
                if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            TokKind::BlockComment
        } else if let Some(end) = try_string_like(b, i) {
            i = end;
            TokKind::Str
        } else if c == b'\'' {
            let (end, kind) = lex_quote(b, i);
            i = end;
            kind
        } else if c.is_ascii_digit() {
            let (end, float) = lex_number(b, i);
            i = end;
            TokKind::Num { float }
        } else if is_ident_start(c) {
            i += 1;
            while i < n && is_ident_continue(b[i]) {
                i += 1;
            }
            TokKind::Ident
        } else {
            const TWO: &[&[u8; 2]] = &[
                b"::", b"==", b"!=", b"<=", b">=", b"->", b"=>", b"..", b"&&", b"||",
            ];
            let pair = b.get(i..i + 2);
            if pair.is_some_and(|p| TWO.iter().any(|t| &t[..] == p)) {
                i += 2;
            } else {
                i += 1;
                // Keep multi-byte UTF-8 punctuation-position chars whole
                // so spans stay on char boundaries.
                while i < n && (0x80..0xC0).contains(&b[i]) {
                    i += 1;
                }
            }
            TokKind::Punct
        };
        debug_assert!(i > start);
        toks.push(Tok { kind, start, end: i });
    }
    Lexed { toks, line_starts }
}

/// If a string-like literal (`"`, `r"`, `r#"`, `b"`, `br#"`, ...)
/// starts at `i`, return its end offset.
fn try_string_like(b: &[u8], i: usize) -> Option<usize> {
    let n = b.len();
    let c = b[i];
    if c == b'"' {
        return Some(scan_escaped_string(b, i + 1, b'"'));
    }
    // Raw / byte-string prefixes. Longest first so `br#"` wins over a
    // `b` identifier. Note the prefix must be immediately followed by
    // the quote syntax, otherwise it is an ordinary identifier.
    if c == b'b' || c == b'r' {
        let mut j = i;
        let mut raw = false;
        if b[j] == b'b' {
            j += 1;
        }
        if j < n && b[j] == b'r' {
            raw = true;
            j += 1;
        }
        if raw {
            let hash_start = j;
            while j < n && b[j] == b'#' {
                j += 1;
            }
            let hashes = j - hash_start;
            if j < n && b[j] == b'"' {
                return Some(scan_raw_string(b, j + 1, hashes));
            }
            return None;
        }
        // `b"..."` (byte string) and `b'x'` (byte char handled by the
        // quote lexer via a 1-byte lookahead in `lex`? No: handle here).
        if i + 1 < n && b[i] == b'b' && b[i + 1] == b'"' {
            return Some(scan_escaped_string(b, i + 2, b'"'));
        }
        if i + 1 < n && b[i] == b'b' && b[i + 1] == b'\'' {
            let (end, _) = lex_quote(b, i + 1);
            return Some(end);
        }
    }
    None
}

/// Scan an escaped string body starting just after the opening quote;
/// returns the offset just past the closing quote (or EOF).
fn scan_escaped_string(b: &[u8], mut i: usize, quote: u8) -> usize {
    let n = b.len();
    while i < n {
        if b[i] == b'\\' {
            i = (i + 2).min(n);
        } else if b[i] == quote {
            return i + 1;
        } else {
            i += 1;
        }
    }
    n
}

/// Scan a raw string body; closes on `"` followed by `hashes` `#`s.
fn scan_raw_string(b: &[u8], mut i: usize, hashes: usize) -> usize {
    let n = b.len();
    while i < n {
        if b[i] == b'"' {
            let mut j = i + 1;
            let mut k = 0;
            while k < hashes && j < n && b[j] == b'#' {
                j += 1;
                k += 1;
            }
            if k == hashes {
                return j;
            }
        }
        i += 1;
    }
    n
}

/// Disambiguate `'a'` (char) from `'a` (lifetime) starting at a `'`.
fn lex_quote(b: &[u8], i: usize) -> (usize, TokKind) {
    let n = b.len();
    debug_assert_eq!(b[i], b'\'');
    let Some(&next) = b.get(i + 1) else {
        return (n, TokKind::Punct);
    };
    if next == b'\\' {
        // Escaped char literal: `'\n'`, `'\u{1F600}'`, ...
        return (scan_escaped_string(b, i + 1, b'\''), TokKind::Char);
    }
    if is_ident_start(next) {
        // Could be `'a'` (char) or `'a` / `'static` (lifetime): scan
        // the identifier, then look for a closing quote.
        let mut j = i + 1;
        while j < n && is_ident_continue(b[j]) {
            j += 1;
        }
        if j < n && b[j] == b'\'' {
            return (j + 1, TokKind::Char);
        }
        return (j, TokKind::Lifetime);
    }
    if next == b'\'' {
        // `''`: not valid Rust; treat as an empty char literal so the
        // lexer keeps making progress.
        return (i + 2, TokKind::Char);
    }
    // `'1'`, `'+'`, or a multi-byte UTF-8 char literal.
    let mut j = i + 1 + 1;
    while j < n && (0x80..0xC0).contains(&b[j]) {
        j += 1;
    }
    if j < n && b[j] == b'\'' {
        return (j + 1, TokKind::Char);
    }
    // A stray quote (e.g. inside macro_rules!): lex as punctuation.
    (i + 1, TokKind::Punct)
}

/// Lex a numeric literal starting at a digit. Returns (end, is_float).
fn lex_number(b: &[u8], i: usize) -> (usize, bool) {
    let n = b.len();
    let mut j = i;
    let radix_prefix = b[i] == b'0'
        && matches!(b.get(i + 1), Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B'));
    if radix_prefix {
        j += 2;
        while j < n && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
            j += 1;
        }
        return (j.max(i + 1), false);
    }
    let mut float = false;
    while j < n && (b[j].is_ascii_digit() || b[j] == b'_') {
        j += 1;
    }
    // Fractional part: a `.` not followed by another `.` (range) or an
    // identifier (method call / field access).
    if j < n && b[j] == b'.' {
        let after = b.get(j + 1).copied();
        let is_range = after == Some(b'.');
        let is_method = after.is_some_and(is_ident_start);
        if !is_range && !is_method {
            float = true;
            j += 1;
            while j < n && (b[j].is_ascii_digit() || b[j] == b'_') {
                j += 1;
            }
        }
    }
    // Exponent.
    if j < n && (b[j] == b'e' || b[j] == b'E') {
        let mut k = j + 1;
        if k < n && (b[k] == b'+' || b[k] == b'-') {
            k += 1;
        }
        if k < n && b[k].is_ascii_digit() {
            float = true;
            j = k;
            while j < n && (b[j].is_ascii_digit() || b[j] == b'_') {
                j += 1;
            }
        }
    }
    // Type suffix (`u32`, `f64`, ...).
    let suffix_start = j;
    while j < n && is_ident_continue(b[j]) {
        j += 1;
    }
    let suffix = &b[suffix_start..j];
    if suffix == b"f32" || suffix == b"f64" {
        float = true;
    }
    (j, float)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, &str)> {
        let lexed = lex(src);
        lexed.toks.iter().map(|t| (t.kind, &src[t.start..t.end])).collect()
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("a /* outer /* inner */ still comment */ b");
        assert_eq!(
            toks,
            vec![
                (TokKind::Ident, "a"),
                (TokKind::BlockComment, "/* outer /* inner */ still comment */"),
                (TokKind::Ident, "b"),
            ]
        );
    }

    #[test]
    fn raw_strings_hide_comment_markers() {
        let toks = kinds(r##"let s = r#"has // and /* inside "quotes" "#;"##);
        let strs: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert_eq!(strs[0].1, r##"r#"has // and /* inside "quotes" "#"##);
    }

    #[test]
    fn lifetime_vs_char_literal() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'a'; let s = 'static; }");
        let lifetimes: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).map(|(_, s)| *s).collect();
        let chars: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokKind::Char).map(|(_, s)| *s).collect();
        assert_eq!(lifetimes, vec!["'a", "'a", "'static"]);
        assert_eq!(chars, vec!["'a'"]);
    }

    #[test]
    fn escaped_char_literals() {
        let toks = kinds(r"let nl = '\n'; let q = '\''; let u = '\u{1F600}';");
        let chars: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokKind::Char).map(|(_, s)| *s).collect();
        assert_eq!(chars, vec![r"'\n'", r"'\''", r"'\u{1F600}'"]);
    }

    #[test]
    fn unsafe_inside_string_is_not_an_ident() {
        let toks = kinds(r#"let msg = "unsafe code here"; // unsafe too"#);
        let idents = toks
            .iter()
            .filter(|(k, s)| *k == TokKind::Ident && *s == "unsafe")
            .count();
        assert_eq!(idents, 0, "string/comment contents must not produce idents");
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let toks = kinds(r##"let a = b"bytes // x"; let c = b'q'; let r = br#"raw"#;"##);
        let strs = toks.iter().filter(|(k, _)| *k == TokKind::Str).count();
        assert_eq!(strs, 3, "{toks:?}");
    }

    #[test]
    fn float_detection() {
        let cases = [
            ("1.5", true),
            ("1.", true),
            ("1e9", true),
            ("2.5e-3", true),
            ("3f64", true),
            ("7f32", true),
            ("42", false),
            ("42u32", false),
            ("0xFF", false),
            ("0b1010", false),
        ];
        for (src, want) in cases {
            let lexed = lex(src);
            assert_eq!(lexed.toks.len(), 1, "{src}");
            assert_eq!(
                lexed.toks[0].kind,
                TokKind::Num { float: want },
                "{src}"
            );
        }
    }

    #[test]
    fn range_and_method_dots_are_not_fractions() {
        let toks = kinds("0..10");
        assert_eq!(toks[0], (TokKind::Num { float: false }, "0"));
        assert_eq!(toks[1], (TokKind::Punct, ".."));
        let toks = kinds("1.max(2)");
        assert_eq!(toks[0], (TokKind::Num { float: false }, "1"));
    }

    #[test]
    fn two_char_operators_lex_whole() {
        let toks = kinds("a == b != c :: d -> e => f .. g");
        let puncts: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokKind::Punct).map(|(_, s)| *s).collect();
        assert_eq!(puncts, vec!["==", "!=", "::", "->", "=>", ".."]);
    }

    #[test]
    fn line_col_mapping() {
        let src = "ab\ncd\n  ef\n";
        let lexed = lex(src);
        assert_eq!(lexed.line_col(0), (1, 1));
        assert_eq!(lexed.line_col(3), (2, 1));
        assert_eq!(lexed.line_col(8), (3, 3));
        assert_eq!(lexed.line_text(src, 8), "  ef");
    }

    #[test]
    fn unterminated_inputs_terminate() {
        for src in ["\"abc", "/* never closed", "r#\"open", "'", "b\"", "0x"] {
            let lexed = lex(src);
            assert!(lexed.toks.iter().all(|t| t.end <= src.len()), "{src:?}");
        }
    }
}
