//! Property-based tests: every algorithm configuration, on arbitrary
//! topologies and message sizes, must build valid programs, run
//! deadlock-free, and satisfy its collective's volume invariants.

use proptest::prelude::*;

use mpcp_collectives::{registry, verify, AlgKind, Collective};
use mpcp_simnet::{Machine, Simulator, Topology};

fn any_bcast_kind() -> impl Strategy<Value = AlgKind> {
    let segs = prop::sample::select(vec![0u64, 1 << 10, 7_777, 64 << 10]);
    prop_oneof![
        Just(AlgKind::BcastLinear),
        ((1u32..6), segs.clone()).prop_map(|(c, s)| AlgKind::BcastChain { chains: c, seg: s }),
        segs.clone().prop_map(|s| AlgKind::BcastPipeline { seg: s }),
        segs.clone().prop_map(|s| AlgKind::BcastSplitBinary { seg: s }),
        segs.clone().prop_map(|s| AlgKind::BcastBinary { seg: s }),
        segs.clone().prop_map(|s| AlgKind::BcastBinomial { seg: s }),
        ((2u32..9), segs).prop_map(|(r, s)| AlgKind::BcastKnomial { radix: r, seg: s }),
        Just(AlgKind::BcastScatterAllgather),
        Just(AlgKind::BcastScatterAllgatherRing),
    ]
}

fn any_allreduce_kind() -> impl Strategy<Value = AlgKind> {
    let segs = prop::sample::select(vec![1u64 << 10, 5000, 64 << 10]);
    prop_oneof![
        Just(AlgKind::AllreduceLinear),
        Just(AlgKind::AllreduceNonoverlapping),
        Just(AlgKind::AllreduceRecDoubling),
        Just(AlgKind::AllreduceRing),
        segs.clone().prop_map(|s| AlgKind::AllreduceSegRing { seg: s }),
        Just(AlgKind::AllreduceRabenseifner),
        ((2u32..9), segs).prop_map(|(r, s)| AlgKind::AllreduceReduceBcast { radix: r, seg: s }),
    ]
}

fn any_alltoall_kind() -> impl Strategy<Value = AlgKind> {
    prop_oneof![
        Just(AlgKind::AlltoallLinear),
        Just(AlgKind::AlltoallPairwise),
        Just(AlgKind::AlltoallBruck),
        (1u32..9).prop_map(|w| AlgKind::AlltoallLinearSync { window: w }),
        Just(AlgKind::AlltoallSpread),
    ]
}

fn check_kind(kind: AlgKind, nodes: u32, ppn: u32, msize: u64) -> Result<(), TestCaseError> {
    let topo = Topology::new(nodes, ppn);
    let machine = Machine::hydra();
    let progs = kind.build(&topo, msize);
    prop_assert_eq!(progs.len(), topo.size() as usize);
    for (r, prog) in progs.iter().enumerate() {
        prop_assert!(prog.validate(r as u32, topo.size()).is_ok(), "{kind:?}");
    }
    let result = Simulator::new(&machine.model, &topo)
        .run(&progs)
        .map_err(|e| TestCaseError::fail(format!("{kind:?} on {nodes}x{ppn}: {e}")))?;
    verify::check(kind.collective(), &topo, msize, &result)
        .map_err(|e| TestCaseError::fail(format!("{kind:?} on {nodes}x{ppn} m={msize}: {e}")))?;
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bcast_invariants(
        kind in any_bcast_kind(),
        nodes in 1u32..6,
        ppn in 1u32..5,
        msize in 1u64..500_000,
    ) {
        check_kind(kind, nodes, ppn, msize)?;
    }

    #[test]
    fn allreduce_invariants(
        kind in any_allreduce_kind(),
        nodes in 1u32..6,
        ppn in 1u32..5,
        msize in 1u64..300_000,
    ) {
        check_kind(kind, nodes, ppn, msize)?;
    }

    #[test]
    fn alltoall_invariants(
        kind in any_alltoall_kind(),
        nodes in 1u32..5,
        ppn in 1u32..4,
        msize in 1u64..50_000,
    ) {
        check_kind(kind, nodes, ppn, msize)?;
    }

    #[test]
    fn registry_configs_build_on_any_topology(
        coll_idx in 0usize..3,
        nodes in 2u32..5,
        ppn in 1u32..4,
        msize in prop::sample::select(vec![1u64, 1024, 65536]),
    ) {
        let coll = Collective::ALL[coll_idx];
        let topo = Topology::new(nodes, ppn);
        for cfg in registry::open_mpi(coll) {
            let progs = cfg.build(&topo, msize);
            for (r, prog) in progs.iter().enumerate() {
                prop_assert!(prog.validate(r as u32, topo.size()).is_ok(), "{}", cfg.label());
            }
        }
    }

    #[test]
    fn runtime_scales_sanely_with_message_size(
        kind in any_bcast_kind(),
        nodes in 2u32..5,
        ppn in 1u32..4,
    ) {
        // 256x the bytes must not be *faster*, and must grow by less
        // than 10^6x (sanity band, catches unit mistakes).
        let topo = Topology::new(nodes, ppn);
        let machine = Machine::hydra();
        let sim = Simulator::new(&machine.model, &topo);
        let t1 = sim.run(&kind.build(&topo, 4096)).unwrap().makespan();
        let t2 = sim.run(&kind.build(&topo, 4096 * 256)).unwrap().makespan();
        prop_assert!(t2 >= t1, "{kind:?}");
        prop_assert!(t2.picos() < t1.picos().saturating_mul(1_000_000), "{kind:?}");
    }
}
