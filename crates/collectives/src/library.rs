//! Simulated MPI libraries: algorithm lists plus a default decision
//! logic, presented behind one façade as a real library would be.

use std::collections::BTreeMap;
use std::sync::Arc;

use mpcp_simnet::{Machine, Program, Topology};

use crate::coll::{AlgorithmConfig, Collective};
use crate::decision::{DecisionLogic, IntelDecision, OpenMpiDecision, TuningGrid};
use crate::registry;

/// A simulated MPI library: per-collective algorithm configurations
/// (`u_{j,l}` in the paper) and the built-in selection heuristic that
/// plays the role of "algorithm 0".
#[derive(Clone)]
pub struct MpiLibrary {
    /// Library name as in Table II ("Open MPI", "Intel MPI").
    pub name: &'static str,
    /// Version string as in Table II.
    pub version: &'static str,
    configs: Arc<BTreeMap<Collective, Vec<AlgorithmConfig>>>,
    decision: Arc<dyn DecisionLogic>,
}

impl MpiLibrary {
    /// Open MPI 4.0.2: the full `coll/tuned` parameter grid with the
    /// fixed (hard-coded) decision rules.
    pub fn open_mpi_4_0_2() -> MpiLibrary {
        let mut configs = BTreeMap::new();
        for coll in Collective::ALL {
            configs.insert(coll, registry::open_mpi(coll));
        }
        let decision = OpenMpiDecision::new(
            registry::open_mpi_bcast(),
            registry::open_mpi_allreduce(),
            registry::open_mpi_alltoall(),
        );
        MpiLibrary {
            name: "Open MPI",
            version: "4.0.2",
            configs: Arc::new(configs),
            decision: Arc::new(decision),
        }
    }

    /// Intel MPI 2019 on a given machine: vendor-preset algorithm ids and
    /// a decision table produced by an exhaustive `mpitune`-style sweep
    /// over `grid` on that machine.
    ///
    /// Pass [`TuningGrid::vendor_default`] for realistic behaviour; the
    /// sweep simulates every configuration on every grid point, so
    /// prefer a reduced grid in tests.
    pub fn intel_mpi_2019(machine: &Machine, grid: TuningGrid) -> MpiLibrary {
        let mut configs = BTreeMap::new();
        for coll in Collective::ALL {
            configs.insert(coll, registry::intel(coll));
        }
        let decision = IntelDecision::tune(&machine.model, &configs, grid);
        MpiLibrary {
            name: "Intel MPI",
            version: "2019",
            configs: Arc::new(configs),
            decision: Arc::new(decision),
        }
    }

    /// Intel MPI tuned only for `colls` (cheaper when a dataset uses a
    /// single collective).
    pub fn intel_mpi_2019_for(
        machine: &Machine,
        grid: TuningGrid,
        colls: &[Collective],
    ) -> MpiLibrary {
        let mut configs = BTreeMap::new();
        for &coll in colls {
            configs.insert(coll, registry::intel(coll));
        }
        let decision = IntelDecision::tune(&machine.model, &configs, grid);
        MpiLibrary {
            name: "Intel MPI",
            version: "2019",
            configs: Arc::new(configs),
            decision: Arc::new(decision),
        }
    }

    /// All configurations for a collective, indexed by `uid`.
    pub fn configs(&self, coll: Collective) -> &[AlgorithmConfig] {
        self.configs
            .get(&coll)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Configurations eligible for selection (excludes benchmark-only
    /// entries like the buggy Open MPI broadcast algorithm 8).
    pub fn selectable(&self, coll: Collective) -> impl Iterator<Item = (usize, &AlgorithmConfig)> {
        self.configs(coll).iter().enumerate().filter(|(_, c)| !c.excluded)
    }

    /// What the library's own heuristic would run for this instance
    /// (the paper's baseline, "Default").
    pub fn default_choice(&self, coll: Collective, msize: u64, topo: &Topology) -> usize {
        self.decision.select(coll, msize, topo)
    }

    /// Compile configuration `uid` of `coll` for an instance.
    pub fn build(&self, coll: Collective, uid: usize, topo: &Topology, msize: u64) -> Vec<Program> {
        self.configs(coll)[uid].build(topo, msize)
    }

    /// Name of the built-in decision logic.
    pub fn decision_name(&self) -> &'static str {
        self.decision.name()
    }
}

impl std::fmt::Debug for MpiLibrary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MpiLibrary")
            .field("name", &self.name)
            .field("version", &self.version)
            .field("decision", &self.decision.name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpcp_simnet::{Machine, Simulator};

    #[test]
    fn open_mpi_library_shape() {
        let lib = MpiLibrary::open_mpi_4_0_2();
        assert_eq!(lib.name, "Open MPI");
        assert!(lib.configs(Collective::Bcast).len() > 50);
        assert_eq!(
            lib.selectable(Collective::Bcast).count(),
            lib.configs(Collective::Bcast).len() - 1
        );
    }

    #[test]
    fn default_choice_is_selectable() {
        let lib = MpiLibrary::open_mpi_4_0_2();
        let topo = Topology::new(8, 8);
        for coll in Collective::ALL {
            for m in [1u64, 4096, 1 << 20] {
                let uid = lib.default_choice(coll, m, &topo);
                assert!(!lib.configs(coll)[uid].excluded);
            }
        }
    }

    #[test]
    fn library_builds_runnable_programs() {
        let lib = MpiLibrary::open_mpi_4_0_2();
        let machine = Machine::hydra();
        let topo = Topology::new(2, 2);
        let uid = lib.default_choice(Collective::Allreduce, 8192, &topo);
        let progs = lib.build(Collective::Allreduce, uid, &topo, 8192);
        let r = Simulator::new(&machine.model, &topo).run(&progs).unwrap();
        assert!(r.makespan().as_secs_f64() > 0.0);
    }

    #[test]
    fn intel_library_tunes_on_machine() {
        let machine = Machine::hydra();
        let lib = MpiLibrary::intel_mpi_2019_for(
            &machine,
            TuningGrid::tiny(),
            &[Collective::Allreduce],
        );
        assert_eq!(lib.configs(Collective::Allreduce).len(), 16);
        let topo = Topology::new(3, 2);
        let uid = lib.default_choice(Collective::Allreduce, 1024, &topo);
        assert!(uid < 16);
        // Collectives not tuned have no configs.
        assert!(lib.configs(Collective::Bcast).is_empty());
    }
}
