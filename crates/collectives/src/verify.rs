//! Semantic volume invariants for collective schedules.
//!
//! The simulator tracks per-rank sent/received bytes; these checks verify
//! that a schedule moved enough data to have actually implemented its
//! collective. They are deliberately *lower bounds with a block-rounding
//! slack* (block-based algorithms cut the buffer into `ceil(m/p)`-byte
//! blocks), so every registered algorithm must pass them — the property
//! tests lean on this.

use mpcp_simnet::{SimResult, Topology};

use crate::builder::block_size;
use crate::coll::Collective;

/// A violated invariant, with enough context to debug the schedule.
#[derive(Clone, Debug, PartialEq)]
pub struct VerifyError {
    /// Rank at fault (or u32::MAX for global checks).
    pub rank: u32,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rank {}: {}", self.rank, self.message)
    }
}

/// Check the volume invariants of a completed collective simulation.
pub fn check(
    coll: Collective,
    topo: &Topology,
    msize: u64,
    result: &SimResult,
) -> Result<(), VerifyError> {
    let p = topo.size();
    if p == 1 {
        return Ok(());
    }
    let block = block_size(msize, p);
    match coll {
        Collective::Bcast => {
            // Every non-root rank must receive the full message (block
            // algorithms may round up per block; split-binary halves
            // round up once per half).
            let need = msize.saturating_sub(block.max(2));
            for rank in 1..p {
                let got = result.recv_bytes[rank as usize];
                if got < need {
                    return Err(VerifyError {
                        rank,
                        message: format!("bcast delivered {got} bytes, need >= {need} (m={msize})"),
                    });
                }
            }
        }
        Collective::Allreduce => {
            // Every rank's result depends on all inputs: it must receive
            // at least ~m bytes, and across ranks at least (p-1) folds of
            // m bytes must flow (information-theoretic minimum).
            let need = msize.saturating_sub(2 * block);
            let mut total = 0u64;
            for rank in 0..p {
                let got = result.recv_bytes[rank as usize];
                total += got;
                if got < need {
                    return Err(VerifyError {
                        rank,
                        message: format!(
                            "allreduce delivered {got} bytes, need >= {need} (m={msize})"
                        ),
                    });
                }
            }
            let global_need = (p as u64 - 1) * msize.saturating_sub(2 * block);
            if total < global_need {
                return Err(VerifyError {
                    rank: u32::MAX,
                    message: format!("allreduce moved {total} bytes total, need >= {global_need}"),
                });
            }
        }
        Collective::Alltoall => {
            // Every rank receives one block from every other rank.
            let need = (p as u64 - 1) * msize;
            for rank in 0..p {
                let got = result.recv_bytes[rank as usize];
                if got < need {
                    return Err(VerifyError {
                        rank,
                        message: format!(
                            "alltoall delivered {got} bytes, need >= {need} (m={msize})"
                        ),
                    });
                }
            }
        }
        Collective::Reduce => {
            // The root's result depends on every rank's vector: across
            // ranks at least (p-1) vectors must flow, and the root must
            // take in at least ~m bytes.
            let total: u64 = result.recv_bytes.iter().sum();
            let global_need = (p as u64 - 1) * msize.saturating_sub(2 * block);
            if total < global_need {
                return Err(VerifyError {
                    rank: u32::MAX,
                    message: format!("reduce moved {total} bytes total, need >= {global_need}"),
                });
            }
            let root_need = msize.saturating_sub(2 * block);
            if result.recv_bytes[0] < root_need {
                return Err(VerifyError {
                    rank: 0,
                    message: format!(
                        "reduce root received {} bytes, need >= {root_need}",
                        result.recv_bytes[0]
                    ),
                });
            }
        }
        Collective::Allgather => {
            // Message size is the per-rank block: everyone ends with all
            // other ranks' blocks.
            let need = (p as u64 - 1) * msize;
            for rank in 0..p {
                let got = result.recv_bytes[rank as usize];
                if got < need {
                    return Err(VerifyError {
                        rank,
                        message: format!(
                            "allgather delivered {got} bytes, need >= {need} (block={msize})"
                        ),
                    });
                }
            }
        }
        Collective::Scatter => {
            // Every non-root rank receives at least its own block.
            for rank in 1..p {
                let got = result.recv_bytes[rank as usize];
                if got < msize {
                    return Err(VerifyError {
                        rank,
                        message: format!(
                            "scatter delivered {got} bytes, need >= {msize} (block={msize})"
                        ),
                    });
                }
            }
        }
        Collective::Gather => {
            // The root collects one block from every other rank.
            let need = (p as u64 - 1) * msize;
            if result.recv_bytes[0] < need {
                return Err(VerifyError {
                    rank: 0,
                    message: format!(
                        "gather root received {} bytes, need >= {need}",
                        result.recv_bytes[0]
                    ),
                });
            }
        }
        Collective::Barrier => {
            // No data moves, but synchronization structure must: at
            // least p-1 token messages, and no rank may finish at t=0
            // without having taken part.
            if result.messages < p as u64 - 1 {
                return Err(VerifyError {
                    rank: u32::MAX,
                    message: format!(
                        "barrier exchanged only {} messages for {p} ranks",
                        result.messages
                    ),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coll::AlgKind;
    use mpcp_simnet::{Machine, Simulator};

    fn run(kind: AlgKind, topo: &Topology, m: u64) -> SimResult {
        let machine = Machine::hydra();
        let progs = kind.build(topo, m);
        Simulator::new(&machine.model, topo).run(&progs).unwrap()
    }

    #[test]
    fn check_accepts_correct_schedules() {
        let topo = Topology::new(3, 2);
        let m = 50_000;
        for kind in [
            AlgKind::BcastChain { chains: 2, seg: 4096 },
            AlgKind::BcastScatterAllgather,
            AlgKind::AllreduceRing,
            AlgKind::AlltoallBruck,
        ] {
            let r = run(kind, &topo, m);
            check(kind.collective(), &topo, m, &r)
                .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
        }
    }

    #[test]
    fn check_rejects_short_volume() {
        let topo = Topology::new(2, 2);
        let m = 10_000;
        // Run a broadcast but verify against a larger message size: the
        // invariant must fire.
        let r = run(AlgKind::BcastLinear, &topo, m);
        let err = check(Collective::Bcast, &topo, 10 * m, &r).unwrap_err();
        assert!(err.message.contains("bcast delivered"));
    }

    #[test]
    fn check_accepts_extended_collectives() {
        let topo = Topology::new(3, 2);
        for (kind, m) in [
            (AlgKind::ReduceKnomial { radix: 2, seg: 4096 }, 50_000u64),
            (AlgKind::ReducePipeline { seg: 4096 }, 50_000),
            (AlgKind::AllgatherBruck, 3000),
            (AlgKind::AllgatherNeighborExchange, 3000),
            (AlgKind::ScatterBinomial, 2048),
            (AlgKind::GatherBinomial, 2048),
            (AlgKind::BarrierDissemination, 0),
        ] {
            let r = run(kind, &topo, m);
            check(kind.collective(), &topo, m, &r)
                .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
        }
    }

    #[test]
    fn check_rejects_short_gather() {
        let topo = Topology::new(2, 2);
        // Run a gather of small blocks, verify against bigger ones.
        let r = run(AlgKind::GatherLinear, &topo, 100);
        assert!(check(Collective::Gather, &topo, 10_000, &r).is_err());
    }

    #[test]
    fn check_rejects_silent_barrier() {
        // A barrier result with no messages must fail.
        let topo = Topology::new(2, 2);
        let r = run(AlgKind::BarrierDissemination, &topo, 0);
        let mut fake = r.clone();
        fake.messages = 0;
        assert!(check(Collective::Barrier, &topo, 0, &fake).is_err());
    }

    #[test]
    fn single_rank_vacuously_passes() {
        let topo = Topology::new(1, 1);
        let r = run(AlgKind::BcastLinear, &topo, 100);
        assert!(check(Collective::Bcast, &topo, 100, &r).is_ok());
    }
}
