//! Program-set builder shared by all schedule generators.

use mpcp_simnet::program::{Tag, TAG_STRIDE};
use mpcp_simnet::{Instr, Program, Topology};

/// Accumulates one instruction list per rank and hands out disjoint tag
/// ranges per communication phase.
pub struct Builder {
    progs: Vec<Vec<Instr>>,
    phase: u32,
    p: u32,
}

impl Builder {
    /// Create an empty builder for `topo.size()` ranks.
    pub fn new(topo: &Topology) -> Self {
        let p = topo.size();
        Builder { progs: (0..p).map(|_| Vec::new()).collect(), phase: 0, p }
    }

    /// Number of ranks.
    #[inline]
    pub fn size(&self) -> u32 {
        self.p
    }

    /// Reserve a fresh tag range for one phase. Segment loops index tags
    /// as `base + segment`, unrolled rounds as `base + round`; ranges from
    /// different phases never overlap (`TAG_STRIDE` apart).
    pub fn phase_tag(&mut self) -> Tag {
        let t = self.phase * TAG_STRIDE;
        self.phase = self
            .phase
            .checked_add(1)
            .expect("tag phase overflow: schedule uses too many phases");
        t
    }

    /// Append an instruction to `rank`'s program.
    #[inline]
    pub fn push(&mut self, rank: u32, instr: Instr) {
        self.progs[rank as usize].push(instr);
    }

    /// Finish and return one [`Program`] per rank.
    pub fn finish(self) -> Vec<Program> {
        self.progs.into_iter().map(Program::from_instrs).collect()
    }
}

/// Block size used by scatter/allgather/ring phases: the message is cut
/// into `p` uniform blocks of `ceil(m/p)` bytes (the simulator models
/// timing and volume, so the ±1-byte imbalance of exact partitions is
/// ignored; totals are conservatively rounded up).
#[inline]
pub fn block_size(msize: u64, p: u32) -> u64 {
    msize.div_ceil(p as u64)
}

/// Effective segment size: `seg = 0` (unsegmented) behaves as one segment
/// covering the whole message.
#[inline]
pub fn effective_seg(msize: u64, seg: u64) -> u64 {
    if seg == 0 {
        msize.max(1)
    } else {
        seg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_are_disjoint() {
        let topo = Topology::new(2, 1);
        let mut b = Builder::new(&topo);
        let t0 = b.phase_tag();
        let t1 = b.phase_tag();
        assert_eq!(t0, 0);
        assert_eq!(t1, TAG_STRIDE);
    }

    #[test]
    fn block_size_rounds_up() {
        assert_eq!(block_size(10, 4), 3);
        assert_eq!(block_size(8, 4), 2);
        assert_eq!(block_size(0, 4), 0);
        assert_eq!(block_size(1, 4), 1);
    }

    #[test]
    fn effective_seg_handles_zero() {
        assert_eq!(effective_seg(4096, 0), 4096);
        assert_eq!(effective_seg(4096, 1024), 1024);
        assert_eq!(effective_seg(0, 0), 1);
    }

    #[test]
    fn builder_collects_programs() {
        let topo = Topology::new(2, 1);
        let mut b = Builder::new(&topo);
        b.push(0, Instr::send(1, 8, 0));
        b.push(1, Instr::recv(0, 8, 0));
        let progs = b.finish();
        assert_eq!(progs.len(), 2);
        assert_eq!(progs[0].count_sends(), 1);
    }
}
