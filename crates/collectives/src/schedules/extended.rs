//! Schedules for the extended collectives (`MPI_Reduce`,
//! `MPI_Allgather`, `MPI_Scatter`, `MPI_Gather`, `MPI_Barrier`) — the
//! paper's framework is collective-agnostic, and these exercise it
//! beyond the three operations its datasets cover.

use mpcp_simnet::program::SegInstr;
use mpcp_simnet::{Instr, Program, Topology};

use crate::builder::{effective_seg, Builder};
use crate::schedules::blocks::{self, Tree};
use crate::trees::{self, log2_ceil, pow2_floor};

// --------------------------------------------------------------------------
// MPI_Reduce (root 0, message size = full vector)
// --------------------------------------------------------------------------

/// Flat reduce: the root receives and folds every rank's vector in rank
/// order.
pub fn reduce_linear(topo: &Topology, msize: u64) -> Vec<Program> {
    let mut b = Builder::new(topo);
    blocks::linear_reduce(&mut b, msize);
    b.finish()
}

/// Tree reduce (k-nomial or binary), segmented.
pub fn reduce_tree(topo: &Topology, msize: u64, tree: Tree, seg: u64) -> Vec<Program> {
    let mut b = Builder::new(topo);
    blocks::tree_reduce(&mut b, msize, seg, tree);
    b.finish()
}

/// Reversed pipeline: segments flow from the chain tail toward the root,
/// folded at every hop.
pub fn reduce_pipeline(topo: &Topology, msize: u64, seg: u64) -> Vec<Program> {
    let p = topo.size();
    let mut b = Builder::new(topo);
    let tag = b.phase_tag();
    let seg = effective_seg(msize, seg);
    // Chain order 0 <- 1 <- 2 <- ... <- p-1.
    for v in 0..p {
        let mut body = Vec::new();
        if v + 1 < p {
            body.push(SegInstr::Recv { peer: v + 1, tag_base: tag });
            body.push(SegInstr::Compute);
        }
        if v > 0 {
            body.push(SegInstr::Send { peer: v - 1, tag_base: tag });
        }
        if !body.is_empty() {
            b.push(v, Instr::seg_loop(msize, seg, body));
        }
    }
    b.finish()
}

// --------------------------------------------------------------------------
// MPI_Allgather (message size = per-rank block)
// --------------------------------------------------------------------------

/// Linear allgather: everyone nonblocking-sends its block to everyone.
pub fn allgather_linear(topo: &Topology, block: u64) -> Vec<Program> {
    let p = topo.size();
    let mut b = Builder::new(topo);
    let tag = b.phase_tag();
    for v in 0..p {
        for i in 1..p {
            let src = (v + p - i) % p;
            b.push(v, Instr::IRecv { peer: src, bytes: block, tag });
        }
        for i in 1..p {
            let dst = (v + i) % p;
            b.push(v, Instr::ISend { peer: dst, bytes: block, tag });
        }
        b.push(v, Instr::WaitAll);
    }
    b.finish()
}

/// Ring allgather.
pub fn allgather_ring(topo: &Topology, block: u64) -> Vec<Program> {
    let mut b = Builder::new(topo);
    blocks::ring_allgather(&mut b, block);
    b.finish()
}

/// Recursive-doubling allgather (surplus ranks folded off the power of
/// two).
pub fn allgather_rd(topo: &Topology, block: u64) -> Vec<Program> {
    let mut b = Builder::new(topo);
    blocks::rd_allgather(&mut b, block);
    b.finish()
}

/// Bruck allgather: `ceil(log2 p)` rounds of doubling concatenations.
pub fn allgather_bruck(topo: &Topology, block: u64) -> Vec<Program> {
    let p = topo.size();
    let mut b = Builder::new(topo);
    let tag = b.phase_tag();
    let rounds = log2_ceil(p);
    for j in 0..rounds {
        let dist = 1u32 << j;
        // Round j moves min(2^j, p - 2^j) blocks.
        let count = dist.min(p - dist) as u64;
        let bytes = count * block;
        for v in 0..p {
            let to = (v + p - dist % p) % p;
            let from = (v + dist) % p;
            b.push(v, Instr::SendRecv {
                send_peer: to,
                send_bytes: bytes,
                send_tag: tag + j,
                recv_peer: from,
                recv_bytes: bytes,
                recv_tag: tag + j,
            });
        }
    }
    b.finish()
}

/// Neighbor-exchange allgather (even `p`; Open MPI falls back to the
/// ring for odd process counts, as do we).
pub fn allgather_neighbor(topo: &Topology, block: u64) -> Vec<Program> {
    let p = topo.size();
    if p % 2 != 0 {
        return allgather_ring(topo, block);
    }
    let mut b = Builder::new(topo);
    let tag = b.phase_tag();
    // Round 0: exchange own block with the fixed partner.
    for v in 0..p {
        let partner = v ^ 1;
        b.push(v, Instr::SendRecv {
            send_peer: partner,
            send_bytes: block,
            send_tag: tag,
            recv_peer: partner,
            recv_bytes: block,
            recv_tag: tag,
        });
    }
    // Rounds 1..p/2: trade runs of two blocks with alternating sides.
    for r in 1..(p / 2) {
        for v in 0..p {
            let even = v % 2 == 0;
            // Even ranks alternate right/left; odd ranks mirror.
            let dir_right = (r % 2 == 1) == even;
            let partner = if dir_right { (v + 1) % p } else { (v + p - 1) % p };
            b.push(v, Instr::SendRecv {
                send_peer: partner,
                send_bytes: 2 * block,
                send_tag: tag + r,
                recv_peer: partner,
                recv_bytes: 2 * block,
                recv_tag: tag + r,
            });
        }
    }
    b.finish()
}

// --------------------------------------------------------------------------
// MPI_Scatter / MPI_Gather (root 0, message size = per-rank block)
// --------------------------------------------------------------------------

/// Linear scatter: the root sends each rank its block directly.
pub fn scatter_linear(topo: &Topology, block: u64) -> Vec<Program> {
    let p = topo.size();
    let mut b = Builder::new(topo);
    let tag = b.phase_tag();
    for v in 1..p {
        b.push(0, Instr::send(v, block, tag + v));
        b.push(v, Instr::recv(0, block, tag + v));
    }
    b.finish()
}

/// Binomial scatter (subtree blocks move together).
pub fn scatter_binomial(topo: &Topology, block: u64) -> Vec<Program> {
    let mut b = Builder::new(topo);
    blocks::binomial_scatter(&mut b, block);
    b.finish()
}

/// Linear gather: every rank sends its block to the root; the root
/// receives them in rank order.
pub fn gather_linear(topo: &Topology, block: u64) -> Vec<Program> {
    let p = topo.size();
    let mut b = Builder::new(topo);
    let tag = b.phase_tag();
    for v in 1..p {
        b.push(0, Instr::recv(v, block, tag + v));
        b.push(v, Instr::send(0, block, tag + v));
    }
    b.finish()
}

/// Windowed linear gather: the root posts at most `window` nonblocking
/// receives at a time.
pub fn gather_linear_sync(topo: &Topology, block: u64, window: u32) -> Vec<Program> {
    let p = topo.size();
    let w = window.max(1) as usize;
    let mut b = Builder::new(topo);
    let tag = b.phase_tag();
    let sources: Vec<u32> = (1..p).collect();
    for chunk in sources.chunks(w) {
        for &v in chunk {
            b.push(0, Instr::IRecv { peer: v, bytes: block, tag: tag + v });
        }
        b.push(0, Instr::WaitAll);
    }
    for v in 1..p {
        b.push(v, Instr::send(0, block, tag + v));
    }
    b.finish()
}

/// Binomial gather: the mirror image of the binomial scatter — each rank
/// first collects its whole subtree, then forwards the coalesced run.
pub fn gather_binomial(topo: &Topology, block: u64) -> Vec<Program> {
    let p = topo.size();
    let mut b = Builder::new(topo);
    let tag = b.phase_tag();
    for v in 0..p {
        // Children deliver their full subtrees, smallest subtree first
        // (reverse of the scatter send order).
        let mut children = trees::binomial_children(v, p);
        children.reverse();
        for c in children {
            let bytes = block * blocks::binomial_subtree_size(c, p) as u64;
            b.push(v, Instr::recv(c, bytes, tag + c));
        }
        if let Some(parent) = trees::binomial_parent(v) {
            let bytes = block * blocks::binomial_subtree_size(v, p) as u64;
            b.push(v, Instr::send(parent, bytes, tag + v));
        }
    }
    b.finish()
}

// --------------------------------------------------------------------------
// MPI_Barrier (token messages of zero payload)
// --------------------------------------------------------------------------

/// Central-coordinator barrier: everyone signals rank 0, rank 0 releases
/// everyone.
pub fn barrier_central(topo: &Topology) -> Vec<Program> {
    let p = topo.size();
    let mut b = Builder::new(topo);
    let up = b.phase_tag();
    let down = b.phase_tag();
    for v in 1..p {
        b.push(0, Instr::recv(v, 0, up + v));
        b.push(v, Instr::send(0, 0, up + v));
    }
    for v in 1..p {
        b.push(0, Instr::send(v, 0, down + v));
        b.push(v, Instr::recv(0, 0, down + v));
    }
    b.finish()
}

/// Recursive-doubling barrier (pairwise token exchanges; surplus ranks
/// notify in, then get released).
pub fn barrier_rd(topo: &Topology) -> Vec<Program> {
    let p = topo.size();
    let p2 = pow2_floor(p);
    let mut b = Builder::new(topo);
    let pre = b.phase_tag();
    let rd = b.phase_tag();
    let post = b.phase_tag();
    for v in p2..p {
        b.push(v, Instr::send(v - p2, 0, pre));
        b.push(v - p2, Instr::recv(v, 0, pre));
    }
    for j in 0..log2_ceil(p2) {
        let dist = 1u32 << j;
        for v in 0..p2 {
            let partner = v ^ dist;
            b.push(v, Instr::SendRecv {
                send_peer: partner,
                send_bytes: 0,
                send_tag: rd + j,
                recv_peer: partner,
                recv_bytes: 0,
                recv_tag: rd + j,
            });
        }
    }
    for v in p2..p {
        b.push(v - p2, Instr::send(v, 0, post));
        b.push(v, Instr::recv(v - p2, 0, post));
    }
    b.finish()
}

/// Dissemination barrier: `ceil(log2 p)` rounds; in round `k` every rank
/// signals `v + 2^k` and waits for `v - 2^k` (mod p).
pub fn barrier_dissemination(topo: &Topology) -> Vec<Program> {
    let p = topo.size();
    let mut b = Builder::new(topo);
    let tag = b.phase_tag();
    for k in 0..log2_ceil(p) {
        let dist = (1u32 << k) % p;
        for v in 0..p {
            let to = (v + dist) % p;
            let from = (v + p - dist) % p;
            b.push(v, Instr::SendRecv {
                send_peer: to,
                send_bytes: 0,
                send_tag: tag + k,
                recv_peer: from,
                recv_bytes: 0,
                recv_tag: tag + k,
            });
        }
    }
    b.finish()
}

/// Tree barrier: binomial fan-in to rank 0, then binomial fan-out.
pub fn barrier_tree(topo: &Topology) -> Vec<Program> {
    let mut b = Builder::new(topo);
    blocks::tree_reduce(&mut b, 0, 1, Tree::Knomial(2));
    blocks::tree_bcast(&mut b, 0, 1, Tree::Knomial(2));
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpcp_simnet::{Machine, Simulator};

    fn run(progs: &[Program], topo: &Topology) -> mpcp_simnet::SimResult {
        let machine = Machine::hydra();
        Simulator::new(&machine.model, topo).run(progs).unwrap()
    }

    #[test]
    fn reduce_variants_fold_everything() {
        let m = 60_000u64;
        for (nodes, ppn) in [(2u32, 2u32), (3, 2), (4, 2)] {
            let topo = Topology::new(nodes, ppn);
            let p = topo.size() as u64;
            for progs in [
                reduce_linear(&topo, m),
                reduce_tree(&topo, m, Tree::Knomial(2), 4096),
                reduce_tree(&topo, m, Tree::Knomial(4), 0),
                reduce_tree(&topo, m, Tree::Binary, 8192),
                reduce_pipeline(&topo, m, 4096),
            ] {
                let r = run(&progs, &topo);
                let total: u64 = r.recv_bytes.iter().sum();
                assert_eq!(total, (p - 1) * m);
                // Rank 0 ends holding the result: it always receives.
                assert!(r.recv_bytes[0] > 0);
            }
        }
    }

    #[test]
    fn allgather_variants_deliver_all_blocks() {
        let block = 3000u64;
        for (nodes, ppn) in [(2u32, 2u32), (3, 2), (4, 2), (5, 1)] {
            let topo = Topology::new(nodes, ppn);
            let p = topo.size() as u64;
            for (name, progs) in [
                ("linear", allgather_linear(&topo, block)),
                ("ring", allgather_ring(&topo, block)),
                ("rd", allgather_rd(&topo, block)),
                ("bruck", allgather_bruck(&topo, block)),
                ("neighbor", allgather_neighbor(&topo, block)),
            ] {
                let r = run(&progs, &topo);
                for v in 0..p as usize {
                    assert!(
                        r.recv_bytes[v] >= (p - 1) * block,
                        "{name} p={p} rank {v}: {}",
                        r.recv_bytes[v]
                    );
                }
            }
        }
    }

    #[test]
    fn scatter_and_gather_move_blocks() {
        let block = 2048u64;
        let topo = Topology::new(3, 2);
        let p = topo.size() as u64;
        for progs in [scatter_linear(&topo, block), scatter_binomial(&topo, block)] {
            let r = run(&progs, &topo);
            for v in 1..p as usize {
                assert!(r.recv_bytes[v] >= block, "rank {v}");
            }
        }
        for progs in [
            gather_linear(&topo, block),
            gather_binomial(&topo, block),
            gather_linear_sync(&topo, block, 2),
        ] {
            let r = run(&progs, &topo);
            assert!(r.recv_bytes[0] >= (p - 1) * block);
        }
    }

    #[test]
    fn barriers_complete_and_synchronize() {
        for (nodes, ppn) in [(2u32, 1u32), (3, 2), (4, 4)] {
            let topo = Topology::new(nodes, ppn);
            let p = topo.size() as u64;
            for (name, progs) in [
                ("central", barrier_central(&topo)),
                ("rd", barrier_rd(&topo)),
                ("dissemination", barrier_dissemination(&topo)),
                ("tree", barrier_tree(&topo)),
            ] {
                let r = run(&progs, &topo);
                assert!(r.messages >= p - 1, "{name}: {} messages", r.messages);
                assert!(r.makespan().as_secs_f64() > 0.0, "{name}");
            }
        }
    }

    #[test]
    fn dissemination_beats_central_at_scale() {
        let topo = Topology::new(16, 4);
        let t_diss = run(&barrier_dissemination(&topo), &topo).makespan();
        let t_central = run(&barrier_central(&topo), &topo).makespan();
        assert!(t_diss.as_secs_f64() < t_central.as_secs_f64());
    }

    #[test]
    fn binomial_gather_coalesces_subtrees() {
        let topo = Topology::new(4, 2); // p = 8, pow2
        let block = 1000u64;
        let progs = gather_binomial(&topo, block);
        let r = run(&progs, &topo);
        // Root receives exactly p-1 blocks' worth (coalesced).
        assert_eq!(r.recv_bytes[0], 7 * block);
        // Rank 4 (subtree of 4) receives 3 blocks before forwarding 4.
        assert_eq!(r.recv_bytes[4], 3 * block);
        assert_eq!(r.sent_bytes[4], 4 * block);
    }
}
