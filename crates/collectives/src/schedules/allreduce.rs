//! `MPI_Allreduce` algorithm schedules, mirroring Open MPI's
//! `coll/tuned` allreduce family plus the k-nomial reduce+bcast presets
//! used by the simulated Intel MPI library.

use mpcp_simnet::program::SegInstr;
use mpcp_simnet::{Instr, Program, Topology};

use crate::builder::{block_size, Builder};
use crate::schedules::blocks::{self, Tree};
use crate::trees::{log2_ceil, pow2_floor};

/// Algorithm 1 — basic linear: flat reduce to rank 0 followed by flat
/// broadcast.
pub fn linear(topo: &Topology, msize: u64) -> Vec<Program> {
    let mut b = Builder::new(topo);
    blocks::linear_reduce(&mut b, msize);
    blocks::linear_bcast(&mut b, msize);
    b.finish()
}

/// Algorithm 2 ("nonoverlapping") and the Intel reduce+bcast presets:
/// k-nomial tree reduce to rank 0, then k-nomial tree broadcast, both
/// optionally segmented.
pub fn reduce_bcast(topo: &Topology, msize: u64, radix: u32, seg: u64) -> Vec<Program> {
    let mut b = Builder::new(topo);
    let tree = Tree::Knomial(radix.max(2));
    blocks::tree_reduce(&mut b, msize, seg, tree);
    blocks::tree_bcast(&mut b, msize, seg, tree);
    b.finish()
}

/// Algorithm 3 — recursive doubling: `log2(p)` rounds exchanging the full
/// buffer, with standard surplus-rank folding for non-powers-of-two.
pub fn recursive_doubling(topo: &Topology, msize: u64) -> Vec<Program> {
    let p = topo.size();
    let p2 = pow2_floor(p);
    let mut b = Builder::new(topo);
    let pre = b.phase_tag();
    let rd = b.phase_tag();
    let post = b.phase_tag();

    // Surplus ranks fold their contribution into a base partner.
    for v in p2..p {
        b.push(v, Instr::send(v - p2, msize, pre));
        b.push(v - p2, Instr::recv(v, msize, pre));
        b.push(v - p2, Instr::Compute { bytes: msize });
    }
    let rounds = log2_ceil(p2);
    for j in 0..rounds {
        let dist = 1u32 << j;
        for v in 0..p2 {
            let partner = v ^ dist;
            b.push(v, Instr::SendRecv {
                send_peer: partner,
                send_bytes: msize,
                send_tag: rd + j,
                recv_peer: partner,
                recv_bytes: msize,
                recv_tag: rd + j,
            });
            b.push(v, Instr::Compute { bytes: msize });
        }
    }
    for v in p2..p {
        b.push(v - p2, Instr::send(v, msize, post));
        b.push(v, Instr::recv(v - p2, msize, post));
    }
    b.finish()
}

/// Algorithm 4 (`seg = 0`) and algorithm 5 ("segmented ring"): ring
/// reduce-scatter followed by ring allgather. With segmentation, each
/// `ceil(m/p)`-byte ring block is further pipelined in `seg`-byte pieces.
pub fn ring(topo: &Topology, msize: u64, seg: u64) -> Vec<Program> {
    let p = topo.size();
    let block = block_size(msize, p);
    let (piece, per_block) = if seg == 0 || seg >= block || block == 0 {
        (block, 1u32)
    } else {
        (seg, block.div_ceil(seg) as u32)
    };
    let steps = (p - 1) * per_block;
    let mut b = Builder::new(topo);
    let rs_tag = b.phase_tag();
    let ag_tag = b.phase_tag();
    for v in 0..p {
        let next = (v + 1) % p;
        let prev = (v + p - 1) % p;
        b.push(
            v,
            Instr::fixed_loop(steps, piece, vec![
                SegInstr::SendRecv {
                    send_peer: next,
                    send_tag_base: rs_tag,
                    recv_peer: prev,
                    recv_tag_base: rs_tag,
                },
                SegInstr::Compute,
            ]),
        );
        b.push(
            v,
            Instr::fixed_loop(steps, piece, vec![SegInstr::SendRecv {
                send_peer: next,
                send_tag_base: ag_tag,
                recv_peer: prev,
                recv_tag_base: ag_tag,
            }]),
        );
    }
    b.finish()
}

/// Algorithm 6 — Rabenseifner: recursive-halving reduce-scatter followed
/// by recursive-doubling allgather; surplus ranks above the largest power
/// of two fold in before and receive the result after.
pub fn rabenseifner(topo: &Topology, msize: u64) -> Vec<Program> {
    let p = topo.size();
    let p2 = pow2_floor(p);
    let mut b = Builder::new(topo);
    let pre = b.phase_tag();
    let rs = b.phase_tag();
    let ag = b.phase_tag();
    let post = b.phase_tag();

    for v in p2..p {
        b.push(v, Instr::send(v - p2, msize, pre));
        b.push(v - p2, Instr::recv(v, msize, pre));
        b.push(v - p2, Instr::Compute { bytes: msize });
    }
    let rounds = log2_ceil(p2);
    // Reduce-scatter by recursive halving: distances p2/2, p2/4, ..., 1;
    // exchanged bytes m/2, m/4, ..., m/p2.
    for step in 0..rounds {
        let dist = p2 >> (step + 1);
        let bytes = msize.div_ceil(1u64 << (step + 1));
        for v in 0..p2 {
            let partner = v ^ dist;
            b.push(v, Instr::SendRecv {
                send_peer: partner,
                send_bytes: bytes,
                send_tag: rs + step,
                recv_peer: partner,
                recv_bytes: bytes,
                recv_tag: rs + step,
            });
            b.push(v, Instr::Compute { bytes });
        }
    }
    // Allgather by recursive doubling: reverse order, same byte ladder.
    for step in (0..rounds).rev() {
        let dist = p2 >> (step + 1);
        let bytes = msize.div_ceil(1u64 << (step + 1));
        for v in 0..p2 {
            let partner = v ^ dist;
            b.push(v, Instr::SendRecv {
                send_peer: partner,
                send_bytes: bytes,
                send_tag: ag + step,
                recv_peer: partner,
                recv_bytes: bytes,
                recv_tag: ag + step,
            });
        }
    }
    for v in p2..p {
        b.push(v - p2, Instr::send(v, msize, post));
        b.push(v, Instr::recv(v - p2, msize, post));
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpcp_simnet::{Machine, Simulator};

    fn run(progs: &[Program], topo: &Topology) -> mpcp_simnet::SimResult {
        let machine = Machine::hydra();
        Simulator::new(&machine.model, topo).run(progs).unwrap()
    }

    /// Information-flow invariants for a completed allreduce:
    /// every rank receives at least ~m bytes (its result depends on all
    /// inputs), and the total reduction work is at least (p-1)·m across
    /// ranks (p-1 folds are information-theoretically required).
    fn assert_allreduce_shape(progs: &[Program], topo: &Topology, m: u64) {
        let p = topo.size();
        let r = run(progs, topo);
        let slack = 2 * block_size(m, p);
        for rank in 0..p as usize {
            assert!(
                r.recv_bytes[rank] + slack >= m,
                "rank {rank} received only {} of ~{m}",
                r.recv_bytes[rank]
            );
        }
        let total_compute_proxy: u64 = r.recv_bytes.iter().sum();
        assert!(total_compute_proxy >= (p as u64 - 1) * m.saturating_sub(slack));
    }

    #[test]
    fn all_allreduce_algorithms_complete() {
        let m = 100_000u64;
        for (nodes, ppn) in [(2u32, 1u32), (2, 2), (3, 2), (4, 4), (5, 3)] {
            let topo = Topology::new(nodes, ppn);
            assert_allreduce_shape(&linear(&topo, m), &topo, m);
            assert_allreduce_shape(&reduce_bcast(&topo, m, 2, 0), &topo, m);
            assert_allreduce_shape(&reduce_bcast(&topo, m, 4, 8192), &topo, m);
            assert_allreduce_shape(&recursive_doubling(&topo, m), &topo, m);
            assert_allreduce_shape(&ring(&topo, m, 0), &topo, m);
            assert_allreduce_shape(&ring(&topo, m, 4096), &topo, m);
            assert_allreduce_shape(&rabenseifner(&topo, m), &topo, m);
        }
    }

    #[test]
    fn recursive_doubling_wins_small_messages() {
        let topo = Topology::new(16, 1);
        let m = 16u64;
        let t_rd = run(&recursive_doubling(&topo, m), &topo).makespan();
        let t_ring = run(&ring(&topo, m, 0), &topo).makespan();
        assert!(t_rd.as_secs_f64() < t_ring.as_secs_f64(), "rd {t_rd} ring {t_ring}");
    }

    #[test]
    fn ring_wins_large_messages() {
        let topo = Topology::new(8, 2);
        let m = 4 << 20;
        let t_rd = run(&recursive_doubling(&topo, m), &topo).makespan();
        let t_ring = run(&ring(&topo, m, 0), &topo).makespan();
        assert!(t_ring.as_secs_f64() < t_rd.as_secs_f64(), "ring {t_ring} rd {t_rd}");
    }

    #[test]
    fn rabenseifner_beats_linear_at_scale() {
        let topo = Topology::new(8, 4);
        let m = 1 << 20;
        let t_rab = run(&rabenseifner(&topo, m), &topo).makespan();
        let t_lin = run(&linear(&topo, m), &topo).makespan();
        assert!(
            t_rab.as_secs_f64() * 4.0 < t_lin.as_secs_f64(),
            "rabenseifner {t_rab} linear {t_lin}"
        );
    }

    #[test]
    fn ring_reduction_work_is_distributed() {
        let topo = Topology::new(4, 1);
        let m = 40_000u64;
        let r = run(&ring(&topo, m, 0), &topo);
        // Every rank both receives and sends ~2m in a ring allreduce.
        for v in 0..4usize {
            assert!(r.recv_bytes[v] >= 2 * m - 4 * block_size(m, 4));
            assert!(r.sent_bytes[v] >= 2 * m - 4 * block_size(m, 4));
        }
    }

    #[test]
    fn nonpow2_surplus_ranks_get_result() {
        for p in [(3u32, 1u32), (5, 1), (3, 2), (7, 1)] {
            let topo = Topology::new(p.0, p.1);
            let m = 32_768u64;
            assert_allreduce_shape(&recursive_doubling(&topo, m), &topo, m);
            assert_allreduce_shape(&rabenseifner(&topo, m), &topo, m);
        }
    }
}
