//! Schedule generators: compile `(algorithm, topology, message size)` into
//! per-rank simulator programs.
//!
//! Submodules group generators by collective; [`blocks`] holds the phases
//! (scatter, reduce, allgather, tree broadcast) that composite algorithms
//! share. All generators are deterministic and allocation-light: segment
//! loops use [`mpcp_simnet::Instr::Loop`], so program size is independent
//! of the segment count.

pub mod allreduce;
pub mod alltoall;
pub mod bcast;
pub mod blocks;
pub mod extended;
pub mod hierarchical;

use mpcp_simnet::{Program, Topology};

use crate::coll::AlgKind;

/// Compile `kind` for the given instance. Single-process topologies yield
/// empty programs (a collective over one rank is a no-op).
pub fn build(kind: AlgKind, topo: &Topology, msize: u64) -> Vec<Program> {
    use AlgKind::*;
    if topo.size() == 1 {
        return vec![Program::empty()];
    }
    match kind {
        BcastLinear => bcast::linear(topo, msize),
        BcastChain { chains, seg } => bcast::chain(topo, msize, chains, seg),
        BcastPipeline { seg } => bcast::chain(topo, msize, 1, seg),
        BcastSplitBinary { seg } => bcast::split_binary(topo, msize, seg),
        BcastBinary { seg } => bcast::binary(topo, msize, seg),
        BcastBinomial { seg } => bcast::knomial(topo, msize, 2, seg),
        BcastKnomial { radix, seg } => bcast::knomial(topo, msize, radix, seg),
        BcastScatterAllgather => bcast::scatter_allgather(topo, msize, false),
        BcastScatterAllgatherRing => bcast::scatter_allgather(topo, msize, true),
        BcastHierarchical { seg } => hierarchical::bcast_hierarchical(topo, msize, seg),
        BcastDoubleTree { seg } => hierarchical::bcast_double_tree(topo, msize, seg),
        AllreduceLinear => allreduce::linear(topo, msize),
        AllreduceNonoverlapping => allreduce::reduce_bcast(topo, msize, 2, 0),
        AllreduceRecDoubling => allreduce::recursive_doubling(topo, msize),
        AllreduceRing => allreduce::ring(topo, msize, 0),
        AllreduceSegRing { seg } => allreduce::ring(topo, msize, seg),
        AllreduceRabenseifner => allreduce::rabenseifner(topo, msize),
        AllreduceReduceBcast { radix, seg } => allreduce::reduce_bcast(topo, msize, radix, seg),
        AllreduceHierarchical { seg } => hierarchical::allreduce_hierarchical(topo, msize, seg),
        AlltoallLinear => alltoall::linear(topo, msize),
        AlltoallPairwise => alltoall::pairwise(topo, msize),
        AlltoallBruck => alltoall::bruck(topo, msize),
        AlltoallLinearSync { window } => alltoall::linear_sync(topo, msize, window),
        AlltoallSpread => alltoall::spread(topo, msize),
        ReduceLinear => extended::reduce_linear(topo, msize),
        ReduceKnomial { radix, seg } => {
            extended::reduce_tree(topo, msize, blocks::Tree::Knomial(radix.max(2)), seg)
        }
        ReduceBinary { seg } => extended::reduce_tree(topo, msize, blocks::Tree::Binary, seg),
        ReducePipeline { seg } => extended::reduce_pipeline(topo, msize, seg),
        AllgatherLinear => extended::allgather_linear(topo, msize),
        AllgatherRing => extended::allgather_ring(topo, msize),
        AllgatherRecDoubling => extended::allgather_rd(topo, msize),
        AllgatherBruck => extended::allgather_bruck(topo, msize),
        AllgatherNeighborExchange => extended::allgather_neighbor(topo, msize),
        ScatterLinear => extended::scatter_linear(topo, msize),
        ScatterBinomial => extended::scatter_binomial(topo, msize),
        GatherLinear => extended::gather_linear(topo, msize),
        GatherBinomial => extended::gather_binomial(topo, msize),
        GatherLinearSync { window } => extended::gather_linear_sync(topo, msize, window),
        BarrierCentral => extended::barrier_central(topo),
        BarrierRecDoubling => extended::barrier_rd(topo),
        BarrierDissemination => extended::barrier_dissemination(topo),
        BarrierTree => extended::barrier_tree(topo),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coll::Collective;

    #[test]
    fn single_rank_is_noop() {
        let topo = Topology::new(1, 1);
        for kind in [
            AlgKind::BcastLinear,
            AlgKind::AllreduceRing,
            AlgKind::AlltoallBruck,
        ] {
            let progs = build(kind, &topo, 1024);
            assert_eq!(progs.len(), 1);
            assert_eq!(progs[0].count_sends(), 0);
        }
    }

    #[test]
    fn every_kind_builds_and_validates() {
        let topo = Topology::new(3, 2); // p = 6, non power of two
        let kinds = [
            AlgKind::BcastLinear,
            AlgKind::BcastChain { chains: 4, seg: 1024 },
            AlgKind::BcastChain { chains: 2, seg: 0 },
            AlgKind::BcastPipeline { seg: 512 },
            AlgKind::BcastSplitBinary { seg: 1024 },
            AlgKind::BcastBinary { seg: 0 },
            AlgKind::BcastBinomial { seg: 2048 },
            AlgKind::BcastKnomial { radix: 4, seg: 0 },
            AlgKind::BcastScatterAllgather,
            AlgKind::BcastScatterAllgatherRing,
            AlgKind::AllreduceLinear,
            AlgKind::AllreduceNonoverlapping,
            AlgKind::AllreduceRecDoubling,
            AlgKind::AllreduceRing,
            AlgKind::AllreduceSegRing { seg: 1024 },
            AlgKind::AllreduceRabenseifner,
            AlgKind::AllreduceReduceBcast { radix: 4, seg: 4096 },
            AlgKind::AlltoallLinear,
            AlgKind::AlltoallPairwise,
            AlgKind::AlltoallBruck,
            AlgKind::AlltoallLinearSync { window: 2 },
            AlgKind::AlltoallSpread,
        ];
        for kind in kinds {
            let progs = build(kind, &topo, 10_000);
            assert_eq!(progs.len(), 6, "{kind:?}");
            for (r, prog) in progs.iter().enumerate() {
                prog.validate(r as u32, 6).unwrap_or_else(|e| panic!("{kind:?}: {e}"));
            }
            // Something must actually be communicated.
            let total: u64 = progs.iter().map(|p| p.count_sends()).sum();
            assert!(total > 0, "{kind:?} sends nothing");
        }
        // The collective() mapping covers every kind used above.
        assert_eq!(kinds.iter().filter(|k| k.collective() == Collective::Bcast).count(), 10);
    }
}
