//! Topology-aware (hierarchical) algorithms — the "future work" family
//! real libraries ship as SMP-aware variants: one leader per compute
//! node, an inter-node phase among leaders over the fabric, and
//! intra-node phases over shared memory. These are registered in
//! [`crate::registry::experimental`] (not in the paper's library lists,
//! whose datasets are fixed by Table II).

use mpcp_simnet::program::SegInstr;
use mpcp_simnet::{Instr, Program, Topology};

use crate::builder::{effective_seg, Builder};
use crate::trees;

/// The leader (lowest rank) of a node.
#[inline]
fn leader(topo: &Topology, node: u32) -> u32 {
    topo.first_rank_on(node)
}

/// Hierarchical broadcast: binomial tree over node leaders (inter-node),
/// then a binomial tree within each node (shared memory), both
/// segmented and pipelined across the two levels.
pub fn bcast_hierarchical(topo: &Topology, msize: u64, seg: u64) -> Vec<Program> {
    let n = topo.nodes();
    let ppn = topo.ppn();
    let seg = effective_seg(msize, seg);
    let mut b = Builder::new(topo);
    let inter = b.phase_tag();
    let intra = b.phase_tag();

    for node in 0..n {
        let lead = leader(topo, node);
        let mut body = Vec::new();
        // Inter-node level: leaders form a binomial tree over node ids.
        if let Some(parent_node) = trees::binomial_parent(node) {
            body.push(SegInstr::Recv { peer: leader(topo, parent_node), tag_base: inter });
        }
        for child_node in trees::binomial_children(node, n) {
            body.push(SegInstr::Send { peer: leader(topo, child_node), tag_base: inter });
        }
        // Intra-node level: the leader feeds its local binomial tree;
        // interleaving it into the same segment loop pipelines levels.
        for local in trees::binomial_children(0, ppn) {
            body.push(SegInstr::Send { peer: lead + local, tag_base: intra });
        }
        if !body.is_empty() {
            b.push(lead, Instr::seg_loop(msize, seg, body));
        }
        // Non-leader ranks: receive from their intra-node parent and
        // forward to intra-node children.
        for local in 1..ppn {
            let rank = lead + local;
            let mut body = vec![SegInstr::Recv {
                peer: lead + trees::binomial_parent(local).unwrap(),
                tag_base: intra,
            }];
            for child in trees::binomial_children(local, ppn) {
                body.push(SegInstr::Send { peer: lead + child, tag_base: intra });
            }
            b.push(rank, Instr::seg_loop(msize, seg, body));
        }
    }
    b.finish()
}

/// Hierarchical allreduce: binomial reduce to each node leader over
/// shared memory, recursive-doubling allreduce among leaders over the
/// fabric, then a binomial intra-node broadcast of the result.
pub fn allreduce_hierarchical(topo: &Topology, msize: u64, seg: u64) -> Vec<Program> {
    let n = topo.nodes();
    let ppn = topo.ppn();
    let seg = effective_seg(msize, seg);
    let mut b = Builder::new(topo);
    let up = b.phase_tag();
    let rd_pre = b.phase_tag();
    let rd = b.phase_tag();
    let rd_post = b.phase_tag();
    let down = b.phase_tag();

    // Phase 1: intra-node binomial reduce to the leader.
    for node in 0..n {
        let lead = leader(topo, node);
        for local in 0..ppn {
            let rank = lead + local;
            let mut body = Vec::new();
            let mut children = trees::binomial_children(local, ppn);
            children.reverse();
            for c in children {
                body.push(SegInstr::Recv { peer: lead + c, tag_base: up });
                body.push(SegInstr::Compute);
            }
            if let Some(parent) = trees::binomial_parent(local) {
                body.push(SegInstr::Send { peer: lead + parent, tag_base: up });
            }
            if !body.is_empty() {
                b.push(rank, Instr::seg_loop(msize, seg, body));
            }
        }
    }

    // Phase 2: recursive doubling among leaders (surplus nodes folded).
    let n2 = trees::pow2_floor(n);
    for node in n2..n {
        let (from, to) = (leader(topo, node), leader(topo, node - n2));
        b.push(from, Instr::send(to, msize, rd_pre));
        b.push(to, Instr::recv(from, msize, rd_pre));
        b.push(to, Instr::Compute { bytes: msize });
    }
    for j in 0..trees::log2_ceil(n2) {
        let dist = 1u32 << j;
        for node in 0..n2 {
            let partner = leader(topo, node ^ dist);
            let me = leader(topo, node);
            b.push(me, Instr::SendRecv {
                send_peer: partner,
                send_bytes: msize,
                send_tag: rd + j,
                recv_peer: partner,
                recv_bytes: msize,
                recv_tag: rd + j,
            });
            b.push(me, Instr::Compute { bytes: msize });
        }
    }
    for node in n2..n {
        let (from, to) = (leader(topo, node - n2), leader(topo, node));
        b.push(from, Instr::send(to, msize, rd_post));
        b.push(to, Instr::recv(from, msize, rd_post));
    }

    // Phase 3: intra-node binomial broadcast of the reduced vector.
    for node in 0..n {
        let lead = leader(topo, node);
        for local in 0..ppn {
            let rank = lead + local;
            let mut body = Vec::new();
            if local > 0 {
                body.push(SegInstr::Recv {
                    peer: lead + trees::binomial_parent(local).unwrap(),
                    tag_base: down,
                });
            }
            for c in trees::binomial_children(local, ppn) {
                body.push(SegInstr::Send { peer: lead + c, tag_base: down });
            }
            if !body.is_empty() {
                b.push(rank, Instr::seg_loop(msize, seg, body));
            }
        }
    }
    b.finish()
}

/// Double-tree broadcast (Hoefler-style): the message is halved and each
/// half streams down one of two *binary* trees; the second tree runs
/// over mirrored ranks, so interior ranks of one tree are (mostly)
/// leaves of the other, halving the per-rank forwarding volume.
///
/// Caveat reproduced faithfully: with blocking per-rank progress (one
/// instruction stream per rank, as in a single-threaded MPI process
/// without asynchronous progress threads), the cross-tree waits
/// serialize the two halves and the algorithm does *not* beat a single
/// binary tree — the well-known reason double trees need strong
/// communication/computation overlap support to pay off. The schedule
/// is correct and included for completeness/experimentation.
pub fn bcast_double_tree(topo: &Topology, msize: u64, seg: u64) -> Vec<Program> {
    let p = topo.size();
    if p <= 2 {
        return crate::schedules::bcast::chain(topo, msize, 1, seg);
    }
    // Both trees carry ceil(m/2) bytes (the classic padding convention)
    // and are interleaved inside ONE segment loop per rank, so a rank
    // alternates between its two roles and the halves truly overlap.
    let half = msize.div_ceil(2);
    let seg = effective_seg(half.max(1), seg);
    let mut b = Builder::new(topo);
    let ta = b.phase_tag();
    let tb = b.phase_tag();
    let mirror = |v: u32| -> u32 { (p - v) % p };

    for rank in 0..p {
        let mut body = Vec::new();
        // Per iteration: post the tree-B receive nonblocking so it
        // overlaps the whole tree-A phase, run the blocking A phase
        // (receive, forward), then collect B and forward it. The A
        // chain is a pure tree; the B chain only waits on completed A
        // phases — acyclic. (Joining both receives *before* the A sends
        // would deadlock: a rank can be interior in one tree and a
        // descendant of its own child in the other.)
        let vm = mirror(rank); // rank == mirror(vm)
        let b_parent = trees::binary_parent(vm).map(mirror);
        if let Some(bp) = b_parent {
            body.push(SegInstr::IRecv { peer: bp, tag_base: tb });
        }
        if let Some(parent) = trees::binary_parent(rank) {
            body.push(SegInstr::Recv { peer: parent, tag_base: ta });
        }
        for c in trees::binary_children(rank, p) {
            body.push(SegInstr::Send { peer: c, tag_base: ta });
        }
        // Collect the B receive (and the previous iteration's B sends),
        // then push this iteration's B segments out nonblocking — they
        // drain while the next iteration's A phase runs.
        if b_parent.is_some() || !trees::binary_children(vm, p).is_empty() {
            body.push(SegInstr::WaitAll);
        }
        for c in trees::binary_children(vm, p) {
            body.push(SegInstr::ISend { peer: mirror(c), tag_base: tb });
        }
        if !body.is_empty() {
            b.push(rank, Instr::seg_loop(half, seg, body));
        }
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpcp_simnet::{Machine, Simulator};

    fn run(progs: &[Program], topo: &Topology) -> mpcp_simnet::SimResult {
        let machine = Machine::hydra();
        Simulator::new(&machine.model, topo).run(progs).unwrap()
    }

    #[test]
    fn hierarchical_bcast_delivers() {
        let m = 150_000u64;
        for (nodes, ppn) in [(2u32, 1u32), (2, 4), (3, 2), (5, 3), (4, 4)] {
            let topo = Topology::new(nodes, ppn);
            let r = run(&bcast_hierarchical(&topo, m, 8192), &topo);
            for rank in 1..topo.size() as usize {
                assert_eq!(r.recv_bytes[rank], m, "{nodes}x{ppn} rank {rank}");
            }
        }
    }

    #[test]
    fn hierarchical_allreduce_satisfies_invariants() {
        let m = 80_000u64;
        for (nodes, ppn) in [(2u32, 2u32), (3, 2), (5, 3), (4, 4)] {
            let topo = Topology::new(nodes, ppn);
            let r = run(&allreduce_hierarchical(&topo, m, 4096), &topo);
            crate::verify::check(crate::Collective::Allreduce, &topo, m, &r)
                .unwrap_or_else(|e| panic!("{nodes}x{ppn}: {e}"));
        }
    }

    #[test]
    fn hierarchical_bcast_moves_minimal_fabric_traffic() {
        // Exactly one inter-node stream per non-root node. (With
        // power-of-two ppn and block mapping a flat binomial tree is
        // accidentally node-aligned too, so compare against a non-power-
        // of-two ppn where flat trees straddle node boundaries.)
        let topo = Topology::new(4, 6);
        let m = 1 << 20;
        let flat = run(&crate::schedules::bcast::knomial(&topo, m, 2, 16 << 10), &topo);
        let hier = run(&bcast_hierarchical(&topo, m, 16 << 10), &topo);
        assert_eq!(hier.bytes_inter, 3 * m); // one stream per non-root node
        assert!(
            hier.bytes_inter <= flat.bytes_inter,
            "hier {} vs flat {}",
            hier.bytes_inter,
            flat.bytes_inter
        );
        assert!(flat.bytes_inter > 3 * m, "flat tree should straddle nodes");
    }

    #[test]
    fn double_tree_delivers_both_halves() {
        let m = 100_001u64; // odd: halves padded to ceil(m/2)
        for (nodes, ppn) in [(2u32, 1u32), (3, 2), (4, 4), (5, 1)] {
            let topo = Topology::new(nodes, ppn);
            let r = run(&bcast_double_tree(&topo, m, 4096), &topo);
            for rank in 1..topo.size() as usize {
                // Each rank receives both (padded) halves.
                assert!(r.recv_bytes[rank] >= m, "{nodes}x{ppn} rank {rank}");
                assert!(r.recv_bytes[rank] <= m + 2, "{nodes}x{ppn} rank {rank}");
            }
        }
    }

    #[test]
    fn double_tree_halves_per_rank_forwarding_volume() {
        // The structural property that motivates double trees: interior
        // ranks of a single binary tree forward 2m; across the two
        // half-trees no rank forwards more than ~m (+1 segment of
        // rounding).
        let topo = Topology::new(16, 1);
        let m = 4 << 20;
        let single = run(&crate::schedules::bcast::binary(&topo, m, 64 << 10), &topo);
        let double = run(&bcast_double_tree(&topo, m, 64 << 10), &topo);
        let max_sent_single = *single.sent_bytes.iter().skip(1).max().unwrap();
        let max_sent_double = *double.sent_bytes.iter().skip(1).max().unwrap();
        assert_eq!(max_sent_single, 2 * m);
        assert!(
            max_sent_double <= m + (64 << 10),
            "double-tree max per-rank egress {max_sent_double}"
        );
        // Blocking-progress caveat: the serialized cross-tree waits cost
        // real time — the double tree is NOT faster in this model.
        assert!(double.makespan() > single.makespan());
    }
}
