//! Shared phases used by composite algorithms: tree broadcast/reduce,
//! binomial scatter, ring and recursive-doubling allgather.
//!
//! Every phase appends instructions to an existing [`Builder`], reserving
//! its own tag range(s), so composites simply call phases in sequence.
//! All phases address *virtual* ranks with the root at 0; callers using a
//! different root must map (the paper's benchmarks are root-0).

use mpcp_simnet::program::SegInstr;
use mpcp_simnet::Instr;

use crate::builder::{effective_seg, Builder};
use crate::trees::{self, pow2_floor};

/// Tree shape used by tree-structured broadcast/reduce phases.
#[derive(Clone, Copy, Debug)]
pub enum Tree {
    /// k-nomial with the given radix (radix 2 = binomial).
    Knomial(u32),
    /// Complete binary tree (heap order).
    Binary,
}

impl Tree {
    fn parent(&self, v: u32) -> Option<u32> {
        match *self {
            Tree::Knomial(k) => trees::knomial_parent(v, k),
            Tree::Binary => trees::binary_parent(v),
        }
    }

    fn children(&self, v: u32, p: u32) -> Vec<u32> {
        match *self {
            Tree::Knomial(k) => trees::knomial_children(v, k, p),
            Tree::Binary => trees::binary_children(v, p),
        }
    }
}

/// Segmented tree broadcast of `msize` bytes down `tree`.
///
/// Every rank's loop body is `[recv parent, send child_0, ...]` per
/// segment, so segments pipeline down the tree.
pub fn tree_bcast(b: &mut Builder, msize: u64, seg: u64, tree: Tree) {
    let p = b.size();
    let tag = b.phase_tag();
    let seg = effective_seg(msize, seg);
    for v in 0..p {
        let mut body = Vec::new();
        if let Some(parent) = tree.parent(v) {
            body.push(SegInstr::Recv { peer: parent, tag_base: tag });
        }
        for c in tree.children(v, p) {
            body.push(SegInstr::Send { peer: c, tag_base: tag });
        }
        if !body.is_empty() {
            b.push(v, Instr::seg_loop(msize, seg, body));
        }
    }
}

/// Segmented tree reduction of `msize` bytes up `tree` to virtual rank 0.
///
/// Loop body: `[recv child_0, compute, ..., send parent]` per segment —
/// partial results pipeline up the tree.
pub fn tree_reduce(b: &mut Builder, msize: u64, seg: u64, tree: Tree) {
    let p = b.size();
    let tag = b.phase_tag();
    let seg = effective_seg(msize, seg);
    for v in 0..p {
        let mut body = Vec::new();
        // Receive from smaller subtrees first (they finish earlier).
        let mut children = tree.children(v, p);
        children.reverse();
        for c in children {
            body.push(SegInstr::Recv { peer: c, tag_base: tag });
            body.push(SegInstr::Compute);
        }
        if let Some(parent) = tree.parent(v) {
            body.push(SegInstr::Send { peer: parent, tag_base: tag });
        }
        if !body.is_empty() {
            b.push(v, Instr::seg_loop(msize, seg, body));
        }
    }
}

/// Linear (flat) broadcast: rank 0 sends `msize` to every other rank with
/// blocking sends, in rank order.
pub fn linear_bcast(b: &mut Builder, msize: u64) {
    let p = b.size();
    let tag = b.phase_tag();
    for v in 1..p {
        b.push(0, Instr::send(v, msize, tag));
        b.push(v, Instr::recv(0, msize, tag));
    }
}

/// Linear (flat) reduce to rank 0: every rank sends the full buffer; the
/// root receives and folds them in rank order.
pub fn linear_reduce(b: &mut Builder, msize: u64) {
    let p = b.size();
    let tag = b.phase_tag();
    for v in 1..p {
        b.push(0, Instr::recv(v, msize, tag));
        b.push(0, Instr::Compute { bytes: msize });
        b.push(v, Instr::send(0, msize, tag));
    }
}

/// Size of virtual rank `v`'s contiguous binomial subtree over `p` ranks.
pub fn binomial_subtree_size(v: u32, p: u32) -> u32 {
    if v == 0 {
        p
    } else {
        let lsb = v & v.wrapping_neg();
        lsb.min(p - v)
    }
}

/// Binomial scatter of `p` blocks of `block` bytes from rank 0: each rank
/// ends up holding its own block (rank `v` gets block `v`).
pub fn binomial_scatter(b: &mut Builder, block: u64) {
    let p = b.size();
    let tag = b.phase_tag();
    for v in 0..p {
        if let Some(parent) = trees::binomial_parent(v) {
            let bytes = block * binomial_subtree_size(v, p) as u64;
            b.push(v, Instr::recv(parent, bytes, tag + v));
        }
        for c in trees::binomial_children(v, p) {
            let bytes = block * binomial_subtree_size(c, p) as u64;
            b.push(v, Instr::send(c, bytes, tag + c));
        }
    }
}

/// Ring allgather: after `p-1` rounds of passing one block to the right,
/// every rank holds all `p` blocks.
pub fn ring_allgather(b: &mut Builder, block: u64) {
    let p = b.size();
    let tag = b.phase_tag();
    for v in 0..p {
        let next = (v + 1) % p;
        let prev = (v + p - 1) % p;
        b.push(
            v,
            Instr::fixed_loop(p - 1, block, vec![SegInstr::SendRecv {
                send_peer: next,
                send_tag_base: tag,
                recv_peer: prev,
                recv_tag_base: tag,
            }]),
        );
    }
}

/// Recursive-doubling allgather of one `block` per rank, with the
/// standard power-of-two remainder handling: surplus ranks fold their
/// block into a partner first and receive the complete buffer afterwards.
pub fn rd_allgather(b: &mut Builder, block: u64) {
    let p = b.size();
    let p2 = pow2_floor(p);
    let pre_tag = b.phase_tag();
    let rd_tag = b.phase_tag();
    let post_tag = b.phase_tag();

    // Pre-phase: ranks p2..p hand their block to rank v - p2.
    for v in p2..p {
        b.push(v, Instr::send(v - p2, block, pre_tag));
        b.push(v - p2, Instr::recv(v, block, pre_tag));
    }

    // Accumulated byte counts per participating rank.
    let mut have: Vec<u64> = (0..p2).map(|v| if v + p2 < p { 2 * block } else { block }).collect();
    let rounds = trees::log2_ceil(p2);
    for j in 0..rounds {
        let dist = 1u32 << j;
        let snapshot = have.clone();
        for v in 0..p2 {
            let partner = v ^ dist;
            b.push(
                v,
                Instr::SendRecv {
                    send_peer: partner,
                    send_bytes: snapshot[v as usize],
                    send_tag: rd_tag + j,
                    recv_peer: partner,
                    recv_bytes: snapshot[partner as usize],
                    recv_tag: rd_tag + j,
                },
            );
            have[v as usize] = snapshot[v as usize] + snapshot[partner as usize];
        }
    }

    // Post-phase: surplus ranks receive the complete buffer.
    let total = block * p as u64;
    for v in p2..p {
        b.push(v - p2, Instr::send(v, total, post_tag));
        b.push(v, Instr::recv(v - p2, total, post_tag));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpcp_simnet::{Machine, Simulator, Topology};

    fn run_phase<F: FnOnce(&mut Builder)>(nodes: u32, ppn: u32, f: F) -> mpcp_simnet::SimResult {
        let topo = Topology::new(nodes, ppn);
        let mut b = Builder::new(&topo);
        f(&mut b);
        let progs = b.finish();
        let machine = Machine::hydra();
        Simulator::new(&machine.model, &topo).run(&progs).unwrap()
    }

    #[test]
    fn tree_bcast_delivers_full_message_everywhere() {
        for p in [(2, 1), (3, 2), (4, 2)] {
            for tree in [Tree::Knomial(2), Tree::Knomial(4), Tree::Binary] {
                let m = 100_000u64;
                let r = run_phase(p.0, p.1, |b| tree_bcast(b, m, 8192, tree));
                for rank in 1..(p.0 * p.1) as usize {
                    assert_eq!(r.recv_bytes[rank], m, "{tree:?} p={p:?} rank={rank}");
                }
                assert_eq!(r.recv_bytes[0], 0);
            }
        }
    }

    #[test]
    fn tree_reduce_folds_everything_into_root() {
        let m = 50_000u64;
        let r = run_phase(3, 2, |b| tree_reduce(b, m, 4096, Tree::Knomial(2)));
        // Root receives from its direct children only, but total received
        // bytes across ranks equals (p-1) * m (every rank forwards once).
        let total: u64 = r.recv_bytes.iter().sum();
        assert_eq!(total, 5 * m);
        assert!(r.recv_bytes[0] > 0);
        // Leaves receive nothing.
        let leaves = (0..6u32).filter(|&v| trees::binomial_children(v, 6).is_empty());
        for leaf in leaves {
            assert_eq!(r.recv_bytes[leaf as usize], 0);
        }
    }

    #[test]
    fn linear_phases_move_expected_volume() {
        let m = 10_000u64;
        let r = run_phase(2, 2, |b| linear_bcast(b, m));
        assert_eq!(r.sent_bytes[0], 3 * m);
        let r = run_phase(2, 2, |b| linear_reduce(b, m));
        assert_eq!(r.recv_bytes[0], 3 * m);
    }

    #[test]
    fn binomial_subtree_sizes_partition() {
        for p in [2u32, 5, 8, 13, 16, 36] {
            let total: u32 = (1..p).map(|v| {
                // Each rank's own subtree contributes itself exactly once:
                // sizes of all direct children of the root sum to p-1.
                if trees::binomial_parent(v) == Some(0) {
                    binomial_subtree_size(v, p)
                } else {
                    0
                }
            }).sum();
            assert_eq!(total, p - 1, "p={p}");
        }
    }

    #[test]
    fn scatter_gives_every_rank_its_block() {
        let block = 1000u64;
        let r = run_phase(3, 2, |b| binomial_scatter(b, block));
        // Every non-root rank receives its whole subtree's blocks.
        for v in 1..6u32 {
            let expect = block * binomial_subtree_size(v, 6) as u64;
            assert_eq!(r.recv_bytes[v as usize], expect, "rank {v}");
        }
    }

    #[test]
    fn ring_allgather_volume() {
        let block = 512u64;
        let p = 6u64;
        let r = run_phase(3, 2, |b| ring_allgather(b, block));
        for v in 0..p as usize {
            assert_eq!(r.recv_bytes[v], (p - 1) * block);
        }
    }

    #[test]
    fn rd_allgather_volume_pow2() {
        let block = 512u64;
        let r = run_phase(4, 1, |b| rd_allgather(b, block));
        // log2(4) = 2 rounds: receive 1 block then 2 blocks.
        for v in 0..4 {
            assert_eq!(r.recv_bytes[v], 3 * block);
        }
    }

    #[test]
    fn rd_allgather_nonpow2_completes() {
        let block = 512u64;
        let p = 6u64;
        let r = run_phase(3, 2, |b| rd_allgather(b, block));
        // Surplus ranks (4, 5) must end up with the full buffer.
        for v in 4..6 {
            assert!(r.recv_bytes[v] >= p * block, "rank {v}: {}", r.recv_bytes[v]);
        }
        // Base ranks have all blocks except (at most) their own.
        for v in 0..4 {
            assert!(r.recv_bytes[v] >= (p - 1) * block, "rank {v}");
        }
    }
}
