//! `MPI_Bcast` algorithm schedules (root 0), mirroring the Open MPI
//! `coll/tuned` broadcast family.

use mpcp_simnet::program::SegInstr;
use mpcp_simnet::{Instr, Program, Topology};

use crate::builder::{block_size, effective_seg, Builder};
use crate::schedules::blocks::{self, Tree};
use crate::trees;

/// Algorithm 1 — basic linear: the root sends the full message to every
/// rank with consecutive blocking sends. No parameters.
pub fn linear(topo: &Topology, msize: u64) -> Vec<Program> {
    let mut b = Builder::new(topo);
    blocks::linear_bcast(&mut b, msize);
    b.finish()
}

/// Algorithm 2 (chains ≥ 2) / algorithm 3 (chains = 1, "pipeline") —
/// chain broadcast: the non-root ranks form `chains` linear pipelines,
/// each fed by the root; `seg`-byte segments flow down every chain
/// concurrently.
pub fn chain(topo: &Topology, msize: u64, chains: u32, seg: u64) -> Vec<Program> {
    let p = topo.size();
    let mut b = Builder::new(topo);
    let tag = b.phase_tag();
    let seg = effective_seg(msize, seg);
    let ch = trees::chains(p, chains);

    // Root: one send per chain head, per segment.
    let root_body: Vec<SegInstr> = ch
        .heads
        .iter()
        .map(|&h| SegInstr::Send { peer: h, tag_base: tag })
        .collect();
    if !root_body.is_empty() {
        b.push(0, Instr::seg_loop(msize, seg, root_body));
    }

    // Chain members: receive from predecessor, forward to successor.
    for v in 1..p {
        let mut body = vec![SegInstr::Recv { peer: ch.prev[v as usize], tag_base: tag }];
        if let Some(next) = ch.next[v as usize] {
            body.push(SegInstr::Send { peer: next, tag_base: tag });
        }
        b.push(v, Instr::seg_loop(msize, seg, body));
    }
    b.finish()
}

/// Algorithm 5 — binary tree, segmented.
pub fn binary(topo: &Topology, msize: u64, seg: u64) -> Vec<Program> {
    let mut b = Builder::new(topo);
    blocks::tree_bcast(&mut b, msize, seg, Tree::Binary);
    b.finish()
}

/// Algorithms 6 and 7 — binomial (`radix = 2`) and k-nomial trees,
/// segmented.
pub fn knomial(topo: &Topology, msize: u64, radix: u32, seg: u64) -> Vec<Program> {
    let mut b = Builder::new(topo);
    blocks::tree_bcast(&mut b, msize, seg, Tree::Knomial(radix.max(2)));
    b.finish()
}

/// Algorithm 4 — split-binary tree: the message is halved; each half is
/// pipelined down one subtree of the binary tree, and afterwards ranks of
/// opposite subtrees exchange their halves pairwise.
///
/// When the two subtrees differ in size (p-1 odd), the unpaired ranks
/// receive the missing half directly from the root (a simplification of
/// Open MPI's leftover handling that preserves volume and critical path).
pub fn split_binary(topo: &Topology, msize: u64, seg: u64) -> Vec<Program> {
    let p = topo.size();
    if p <= 2 {
        // Degenerates to a single pipeline.
        return chain(topo, msize, 1, seg);
    }
    let half = msize.div_ceil(2);
    let seg = effective_seg(half, seg);
    let mut b = Builder::new(topo);
    let tag = b.phase_tag();
    let xtag = b.phase_tag();
    let ltag = b.phase_tag();

    // Which half-tree does v belong to? (1 = left, 2 = right, 0 = root)
    let side = |mut v: u32| -> u32 {
        while v > 2 {
            v = trees::binary_parent(v).unwrap();
        }
        v
    };
    let left: Vec<u32> = (1..p).filter(|&v| side(v) == 1).collect();
    let right: Vec<u32> = (1..p).filter(|&v| side(v) == 2).collect();

    // Phase 1: pipeline one half into each subtree.
    let mut root_body = vec![SegInstr::Send { peer: 1, tag_base: tag }];
    if p > 2 {
        root_body.push(SegInstr::Send { peer: 2, tag_base: tag });
    }
    b.push(0, Instr::seg_loop(half, seg, root_body));
    for v in 1..p {
        let mut body = vec![SegInstr::Recv {
            peer: trees::binary_parent(v).unwrap(),
            tag_base: tag,
        }];
        for c in trees::binary_children(v, p) {
            body.push(SegInstr::Send { peer: c, tag_base: tag });
        }
        b.push(v, Instr::seg_loop(half, seg, body));
    }

    // Phase 2: exchange halves across the subtrees.
    let paired = left.len().min(right.len());
    for i in 0..paired {
        let (l, r) = (left[i], right[i]);
        b.push(l, Instr::SendRecv {
            send_peer: r,
            send_bytes: half,
            send_tag: xtag,
            recv_peer: r,
            recv_bytes: half,
            recv_tag: xtag,
        });
        b.push(r, Instr::SendRecv {
            send_peer: l,
            send_bytes: half,
            send_tag: xtag,
            recv_peer: l,
            recv_bytes: half,
            recv_tag: xtag,
        });
    }
    // Unpaired leftovers get the missing half from the root.
    for &v in left.iter().skip(paired).chain(right.iter().skip(paired)) {
        b.push(0, Instr::send(v, half, ltag + v));
        b.push(v, Instr::recv(0, half, ltag + v));
    }
    b.finish()
}

/// Algorithm 8 ("scatter_allgather", recursive doubling) and algorithm 9
/// ("scatter_allgather_ring"): binomial scatter of `p` uniform blocks,
/// then an allgather — recursive doubling or ring.
pub fn scatter_allgather(topo: &Topology, msize: u64, ring: bool) -> Vec<Program> {
    let p = topo.size();
    let block = block_size(msize, p);
    let mut b = Builder::new(topo);
    blocks::binomial_scatter(&mut b, block);
    if ring {
        blocks::ring_allgather(&mut b, block);
    } else {
        blocks::rd_allgather(&mut b, block);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpcp_simnet::{Machine, Simulator};

    fn run(progs: &[Program], topo: &Topology) -> mpcp_simnet::SimResult {
        let machine = Machine::hydra();
        Simulator::new(&machine.model, topo).run(progs).unwrap()
    }

    /// Every non-root rank must receive at least (close to) the full
    /// message; block-based algorithms may round up to ceil(m/p)·p.
    fn assert_bcast_complete(progs: &[Program], topo: &Topology, m: u64) {
        let r = run(progs, topo);
        let slack = block_size(m, topo.size());
        for rank in 1..topo.size() as usize {
            assert!(
                r.recv_bytes[rank] + slack >= m,
                "rank {rank} received only {} of {m}",
                r.recv_bytes[rank]
            );
        }
    }

    #[test]
    fn all_bcast_algorithms_deliver() {
        let m = 200_000u64;
        for (nodes, ppn) in [(2u32, 1u32), (2, 2), (3, 2), (4, 4), (5, 3)] {
            let topo = Topology::new(nodes, ppn);
            assert_bcast_complete(&linear(&topo, m), &topo, m);
            for c in [1, 2, 4, 8] {
                assert_bcast_complete(&chain(&topo, m, c, 8192), &topo, m);
                assert_bcast_complete(&chain(&topo, m, c, 0), &topo, m);
            }
            assert_bcast_complete(&binary(&topo, m, 8192), &topo, m);
            assert_bcast_complete(&knomial(&topo, m, 2, 8192), &topo, m);
            assert_bcast_complete(&knomial(&topo, m, 4, 0), &topo, m);
            assert_bcast_complete(&knomial(&topo, m, 8, 16384), &topo, m);
            assert_bcast_complete(&split_binary(&topo, m, 8192), &topo, m);
            assert_bcast_complete(&scatter_allgather(&topo, m, false), &topo, m);
            assert_bcast_complete(&scatter_allgather(&topo, m, true), &topo, m);
        }
    }

    #[test]
    fn tiny_message_still_delivers() {
        let topo = Topology::new(3, 2);
        assert_bcast_complete(&knomial(&topo, 1, 2, 0), &topo, 1);
        assert_bcast_complete(&scatter_allgather(&topo, 1, true), &topo, 1);
        assert_bcast_complete(&split_binary(&topo, 1, 1024), &topo, 1);
    }

    #[test]
    fn chain_beats_linear_for_large_messages() {
        // The Fig. 2 mechanism: a segmented chain pipelines, linear
        // serializes p-1 full-size sends at the root.
        let topo = Topology::new(8, 4);
        let m = 4 << 20;
        let t_linear = run(&linear(&topo, m), &topo).makespan();
        let t_chain = run(&chain(&topo, m, 4, 65536), &topo).makespan();
        assert!(
            t_chain.as_secs_f64() * 4.0 < t_linear.as_secs_f64(),
            "chain {t_chain} vs linear {t_linear}"
        );
    }

    #[test]
    fn segmentation_helps_the_chain() {
        let topo = Topology::new(8, 2);
        let m = 4 << 20;
        let t_noseg = run(&chain(&topo, m, 1, 0), &topo).makespan();
        let t_seg = run(&chain(&topo, m, 1, 65536), &topo).makespan();
        assert!(
            t_seg.as_secs_f64() < t_noseg.as_secs_f64(),
            "seg {t_seg} vs noseg {t_noseg}"
        );
    }

    #[test]
    fn binomial_wins_for_small_messages() {
        // Latency-bound regime: log2(p) rounds beat a p-1 send chain.
        let topo = Topology::new(16, 2);
        let m = 16u64;
        let t_tree = run(&knomial(&topo, m, 2, 0), &topo).makespan();
        let t_chain = run(&chain(&topo, m, 1, 0), &topo).makespan();
        assert!(
            t_tree.as_secs_f64() < t_chain.as_secs_f64(),
            "binomial {t_tree} vs pipeline {t_chain}"
        );
    }

    #[test]
    fn split_binary_pairs_exchange() {
        let topo = Topology::new(4, 2); // p = 8, subtrees of 4 and 3
        let m = 100_000u64;
        assert_bcast_complete(&split_binary(&topo, m, 4096), &topo, m);
    }

    #[test]
    fn two_rank_split_binary_degenerates() {
        let topo = Topology::new(2, 1);
        let m = 10_000u64;
        assert_bcast_complete(&split_binary(&topo, m, 1024), &topo, m);
    }
}
