//! `MPI_Alltoall` algorithm schedules. The message size `msize` is the
//! per-destination buffer (each rank sends `msize` bytes to every other
//! rank); self-blocks are local copies and not simulated.

use mpcp_simnet::{Instr, Program, Topology};

use crate::builder::Builder;
use crate::trees::log2_ceil;

/// Basic linear: post all nonblocking receives, then all nonblocking
/// sends (destination order staggered by own rank to avoid a hot spot),
/// then one wait-all.
pub fn linear(topo: &Topology, msize: u64) -> Vec<Program> {
    let p = topo.size();
    let mut b = Builder::new(topo);
    let tag = b.phase_tag();
    for v in 0..p {
        for i in 1..p {
            let src = (v + p - i) % p;
            b.push(v, Instr::IRecv { peer: src, bytes: msize, tag });
        }
        for i in 1..p {
            let dst = (v + i) % p;
            b.push(v, Instr::ISend { peer: dst, bytes: msize, tag });
        }
        b.push(v, Instr::WaitAll);
    }
    b.finish()
}

/// Pairwise exchange: `p-1` rounds; in round `r` rank `v` sends to
/// `v + r` and receives from `v - r` (mod p) — a congestion-free schedule
/// on many fabrics.
pub fn pairwise(topo: &Topology, msize: u64) -> Vec<Program> {
    let p = topo.size();
    let mut b = Builder::new(topo);
    let tag = b.phase_tag();
    for v in 0..p {
        for r in 1..p {
            let to = (v + r) % p;
            let from = (v + p - r) % p;
            b.push(v, Instr::SendRecv {
                send_peer: to,
                send_bytes: msize,
                send_tag: tag + r,
                recv_peer: from,
                recv_bytes: msize,
                recv_tag: tag + r,
            });
        }
    }
    b.finish()
}

/// Bruck: `ceil(log2 p)` rounds; round `j` forwards every block whose
/// offset has bit `j` set (≈ half the buffer), trading extra volume for
/// logarithmic latency. Optimal for small messages.
pub fn bruck(topo: &Topology, msize: u64) -> Vec<Program> {
    let p = topo.size();
    let mut b = Builder::new(topo);
    let tag = b.phase_tag();
    let rounds = log2_ceil(p);
    for j in 0..rounds {
        let dist = 1u32 << j;
        // Number of block offsets in [0, p) with bit j set.
        let period = 1u64 << (j + 1);
        let full = (p as u64 / period) * (period / 2);
        let rem = (p as u64 % period).saturating_sub(period / 2);
        let count = full + rem;
        let bytes = count * msize;
        for v in 0..p {
            let to = (v + p - dist % p) % p;
            let from = (v + dist) % p;
            b.push(v, Instr::SendRecv {
                send_peer: to,
                send_bytes: bytes,
                send_tag: tag + j,
                recv_peer: from,
                recv_bytes: bytes,
                recv_tag: tag + j,
            });
        }
    }
    b.finish()
}

/// Linear with a bounded window: like [`linear`] but at most `window`
/// outstanding send/receive pairs at a time (Open MPI's
/// "linear_sync"-style throttling).
pub fn linear_sync(topo: &Topology, msize: u64, window: u32) -> Vec<Program> {
    let p = topo.size();
    let w = window.max(1);
    let mut b = Builder::new(topo);
    let tag = b.phase_tag();
    for v in 0..p {
        let peers: Vec<u32> = (1..p).map(|i| (v + i) % p).collect();
        for chunk in peers.chunks(w as usize) {
            for &peer in chunk {
                // Receive from the mirror peer (the rank whose send of
                // this round targets us), keeping windows globally
                // aligned so no window waits on a later one.
                let src = (2 * v + p - peer % p) % p;
                b.push(v, Instr::IRecv { peer: src, bytes: msize, tag });
                b.push(v, Instr::ISend { peer, bytes: msize, tag });
            }
            b.push(v, Instr::WaitAll);
        }
    }
    b.finish()
}

/// Spread: all receives posted up front, then one *blocking* send per
/// round in staggered order — serializes injections but never floods the
/// receive side.
pub fn spread(topo: &Topology, msize: u64) -> Vec<Program> {
    let p = topo.size();
    let mut b = Builder::new(topo);
    let tag = b.phase_tag();
    for v in 0..p {
        for i in 1..p {
            let src = (v + p - i) % p;
            b.push(v, Instr::IRecv { peer: src, bytes: msize, tag });
        }
        for i in 1..p {
            let dst = (v + i) % p;
            b.push(v, Instr::Send { peer: dst, bytes: msize, tag });
        }
        b.push(v, Instr::WaitAll);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpcp_simnet::{Machine, Simulator};

    fn run(progs: &[Program], topo: &Topology) -> mpcp_simnet::SimResult {
        let machine = Machine::hydra();
        Simulator::new(&machine.model, topo).run(progs).unwrap()
    }

    /// Every rank must receive at least (p-1)·m bytes (Bruck relays more).
    fn assert_alltoall_complete(progs: &[Program], topo: &Topology, m: u64) {
        let p = topo.size() as u64;
        let r = run(progs, topo);
        for rank in 0..p as usize {
            assert!(
                r.recv_bytes[rank] >= (p - 1) * m,
                "rank {rank} received {} < {}",
                r.recv_bytes[rank],
                (p - 1) * m
            );
        }
    }

    #[test]
    fn all_alltoall_algorithms_complete() {
        let m = 4096u64;
        for (nodes, ppn) in [(2u32, 1u32), (2, 2), (3, 2), (4, 2), (5, 1)] {
            let topo = Topology::new(nodes, ppn);
            assert_alltoall_complete(&linear(&topo, m), &topo, m);
            assert_alltoall_complete(&pairwise(&topo, m), &topo, m);
            assert_alltoall_complete(&bruck(&topo, m), &topo, m);
            assert_alltoall_complete(&linear_sync(&topo, m, 4), &topo, m);
            assert_alltoall_complete(&spread(&topo, m), &topo, m);
        }
    }

    #[test]
    fn bruck_volume_is_logarithmic_rounds() {
        let topo = Topology::new(4, 2); // p = 8
        let progs = bruck(&topo, 1000);
        // Each rank does exactly log2(8) = 3 sendrecvs of 4 blocks each.
        assert_eq!(progs[0].count_sends(), 3);
        assert_eq!(progs[0].count_sent_bytes(), 3 * 4 * 1000);
    }

    #[test]
    fn bruck_wins_small_messages_at_scale() {
        let topo = Topology::new(8, 4);
        let m = 16u64;
        let t_bruck = run(&bruck(&topo, m), &topo).makespan();
        let t_pair = run(&pairwise(&topo, m), &topo).makespan();
        assert!(
            t_bruck.as_secs_f64() < t_pair.as_secs_f64(),
            "bruck {t_bruck} pairwise {t_pair}"
        );
    }

    #[test]
    fn pairwise_wins_large_messages() {
        let topo = Topology::new(4, 2);
        let m = 1 << 20;
        let t_bruck = run(&bruck(&topo, m), &topo).makespan();
        let t_pair = run(&pairwise(&topo, m), &topo).makespan();
        assert!(
            t_pair.as_secs_f64() < t_bruck.as_secs_f64(),
            "pairwise {t_pair} bruck {t_bruck}"
        );
    }

    #[test]
    fn rendezvous_sized_linear_does_not_deadlock() {
        // Large per-pair messages exercise RTS/CTS with nonblocking ops.
        let topo = Topology::new(2, 2);
        assert_alltoall_complete(&linear(&topo, 1 << 20), &topo, 1 << 20);
        assert_alltoall_complete(&spread(&topo, 1 << 20), &topo, 1 << 20);
    }
}
