//! Collective operations, algorithm kinds, and algorithm configurations.
//!
//! Following the paper's Section III-B, an *algorithm configuration*
//! `u_{j,l}` merges the algorithm id `j` with one concrete allocation of
//! its parameters (segment size, chain count, tree radix, window). The
//! configuration index within a library's list is the unit the selection
//! framework trains one regression model for.

use serde::{Deserialize, Serialize};

use mpcp_simnet::{Program, Topology};

use crate::schedules;

/// The blocking collective operations supported.
///
/// The paper evaluates [`Collective::PAPER`] (Bcast, Allreduce,
/// Alltoall — the most used collectives per its §II); the remaining
/// operations implement the paper's "generic and could be applied to all
/// collective communications" claim and share the same selection
/// machinery.
///
/// Buffer-size convention: for `Bcast`, `Reduce` and `Allreduce` the
/// message size `m` is the full vector; for `Alltoall`, `Allgather`,
/// `Scatter` and `Gather` it is the per-rank block (send/recv count);
/// `Barrier` ignores it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Collective {
    /// `MPI_Bcast`, root 0.
    Bcast,
    /// `MPI_Allreduce` (sum-like elementwise reduction).
    Allreduce,
    /// `MPI_Alltoall`; the message size is the per-destination buffer.
    Alltoall,
    /// `MPI_Reduce` to root 0.
    Reduce,
    /// `MPI_Allgather`; message size is the per-rank block.
    Allgather,
    /// `MPI_Scatter` from root 0; message size is the per-rank block.
    Scatter,
    /// `MPI_Gather` to root 0; message size is the per-rank block.
    Gather,
    /// `MPI_Barrier`.
    Barrier,
}

impl Collective {
    /// Every supported collective.
    pub const ALL: [Collective; 8] = [
        Collective::Bcast,
        Collective::Allreduce,
        Collective::Alltoall,
        Collective::Reduce,
        Collective::Allgather,
        Collective::Scatter,
        Collective::Gather,
        Collective::Barrier,
    ];

    /// The three collectives the paper's datasets cover.
    pub const PAPER: [Collective; 3] =
        [Collective::Bcast, Collective::Allreduce, Collective::Alltoall];

    /// MPI-style name, for report output.
    pub fn mpi_name(&self) -> &'static str {
        match self {
            Collective::Bcast => "MPI_Bcast",
            Collective::Allreduce => "MPI_Allreduce",
            Collective::Alltoall => "MPI_Alltoall",
            Collective::Reduce => "MPI_Reduce",
            Collective::Allgather => "MPI_Allgather",
            Collective::Scatter => "MPI_Scatter",
            Collective::Gather => "MPI_Gather",
            Collective::Barrier => "MPI_Barrier",
        }
    }
}

impl std::fmt::Display for Collective {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.mpi_name())
    }
}

/// A concrete algorithm with all parameters bound (`seg = 0` means
/// unsegmented where applicable).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AlgKind {
    // --- MPI_Bcast ---
    /// Root sends the full message to every rank, one blocking send at a
    /// time.
    BcastLinear,
    /// `chains` parallel pipelines over the non-root ranks, `seg`-byte
    /// segments.
    BcastChain { chains: u32, seg: u64 },
    /// Single pipeline (chain with one chain).
    BcastPipeline { seg: u64 },
    /// Message halved over the two subtrees of a binary tree, then halves
    /// exchanged pairwise between the subtrees.
    BcastSplitBinary { seg: u64 },
    /// Complete binary tree, segmented.
    BcastBinary { seg: u64 },
    /// Binomial tree, segmented.
    BcastBinomial { seg: u64 },
    /// k-nomial tree with the given radix, segmented.
    BcastKnomial { radix: u32, seg: u64 },
    /// Binomial scatter followed by recursive-doubling allgather.
    BcastScatterAllgather,
    /// Binomial scatter followed by ring allgather.
    BcastScatterAllgatherRing,
    /// Topology-aware: binomial over node leaders, binomial within nodes
    /// (experimental; not in the paper's library lists).
    BcastHierarchical { seg: u64 },
    /// Two interleaved binomial trees, one half of the message each
    /// (experimental).
    BcastDoubleTree { seg: u64 },

    // --- MPI_Allreduce ---
    /// Linear reduce to rank 0 followed by linear broadcast.
    AllreduceLinear,
    /// Binomial reduce followed by binomial broadcast (Open MPI's
    /// "nonoverlapping").
    AllreduceNonoverlapping,
    /// Recursive doubling (full message each round).
    AllreduceRecDoubling,
    /// Ring reduce-scatter + ring allgather.
    AllreduceRing,
    /// Ring with `seg`-byte pipeline segments.
    AllreduceSegRing { seg: u64 },
    /// Rabenseifner: recursive-halving reduce-scatter + recursive-doubling
    /// allgather.
    AllreduceRabenseifner,
    /// k-nomial reduce followed by k-nomial broadcast (Intel MPI preset
    /// family).
    AllreduceReduceBcast { radix: u32, seg: u64 },
    /// Topology-aware: intra-node reduce, leader recursive doubling,
    /// intra-node broadcast (experimental).
    AllreduceHierarchical { seg: u64 },

    // --- MPI_Alltoall ---
    /// All nonblocking receives + sends, then a single wait-all.
    AlltoallLinear,
    /// p-1 rounds of pairwise `sendrecv` with ranks `v±r`.
    AlltoallPairwise,
    /// Bruck's log-round algorithm (latency-optimal, extra volume).
    AlltoallBruck,
    /// Linear with a bounded window of outstanding operations.
    AlltoallLinearSync { window: u32 },
    /// One destination per round, offset to spread hot spots.
    AlltoallSpread,

    // --- MPI_Reduce ---
    /// Flat receive-and-fold at the root.
    ReduceLinear,
    /// k-nomial tree reduction, segmented (radix 2 = binomial).
    ReduceKnomial { radix: u32, seg: u64 },
    /// Binary-tree reduction, segmented.
    ReduceBinary { seg: u64 },
    /// Single reversed pipeline (chain) with per-hop folds, segmented.
    ReducePipeline { seg: u64 },

    // --- MPI_Allgather ---
    /// Everyone nonblocking-sends its block to everyone.
    AllgatherLinear,
    /// Ring: p-1 block rotations.
    AllgatherRing,
    /// Recursive doubling (with surplus-rank folding off powers of two).
    AllgatherRecDoubling,
    /// Bruck's concatenation algorithm.
    AllgatherBruck,
    /// Neighbor exchange (pairs trade growing runs; falls back to ring
    /// for odd process counts, as in Open MPI).
    AllgatherNeighborExchange,

    // --- MPI_Scatter ---
    /// Root sends each rank its block directly.
    ScatterLinear,
    /// Binomial-tree scatter (subtree blocks forwarded in halves).
    ScatterBinomial,

    // --- MPI_Gather ---
    /// Every rank sends its block straight to the root.
    GatherLinear,
    /// Binomial-tree gather (subtree blocks coalesced on the way up).
    GatherBinomial,
    /// Linear with a bounded window of outstanding receives at the root.
    GatherLinearSync { window: u32 },

    // --- MPI_Barrier ---
    /// Central coordinator: gather tokens, then release.
    BarrierCentral,
    /// Recursive doubling with zero-byte tokens.
    BarrierRecDoubling,
    /// Dissemination (Bruck) barrier.
    BarrierDissemination,
    /// Binomial fan-in followed by binomial fan-out.
    BarrierTree,
}

impl AlgKind {
    /// Which collective this algorithm implements.
    pub fn collective(&self) -> Collective {
        use AlgKind::*;
        match self {
            BcastLinear
            | BcastChain { .. }
            | BcastPipeline { .. }
            | BcastSplitBinary { .. }
            | BcastBinary { .. }
            | BcastBinomial { .. }
            | BcastKnomial { .. }
            | BcastScatterAllgather
            | BcastScatterAllgatherRing
            | BcastHierarchical { .. }
            | BcastDoubleTree { .. } => Collective::Bcast,
            AllreduceLinear
            | AllreduceNonoverlapping
            | AllreduceRecDoubling
            | AllreduceRing
            | AllreduceSegRing { .. }
            | AllreduceRabenseifner
            | AllreduceReduceBcast { .. }
            | AllreduceHierarchical { .. } => Collective::Allreduce,
            AlltoallLinear
            | AlltoallPairwise
            | AlltoallBruck
            | AlltoallLinearSync { .. }
            | AlltoallSpread => Collective::Alltoall,
            ReduceLinear | ReduceKnomial { .. } | ReduceBinary { .. } | ReducePipeline { .. } => {
                Collective::Reduce
            }
            AllgatherLinear
            | AllgatherRing
            | AllgatherRecDoubling
            | AllgatherBruck
            | AllgatherNeighborExchange => Collective::Allgather,
            ScatterLinear | ScatterBinomial => Collective::Scatter,
            GatherLinear | GatherBinomial | GatherLinearSync { .. } => Collective::Gather,
            BarrierCentral | BarrierRecDoubling | BarrierDissemination | BarrierTree => {
                Collective::Barrier
            }
        }
    }

    /// Short algorithm family name (without parameters).
    pub fn family(&self) -> &'static str {
        use AlgKind::*;
        match self {
            BcastLinear => "linear",
            BcastChain { .. } => "chain",
            BcastPipeline { .. } => "pipeline",
            BcastSplitBinary { .. } => "split_binary",
            BcastBinary { .. } => "binary",
            BcastBinomial { .. } => "binomial",
            BcastKnomial { .. } => "knomial",
            BcastScatterAllgather => "scatter_allgather",
            BcastScatterAllgatherRing => "scatter_allgather_ring",
            BcastHierarchical { .. } => "hierarchical",
            BcastDoubleTree { .. } => "double_tree",
            AllreduceLinear => "basic_linear",
            AllreduceNonoverlapping => "nonoverlapping",
            AllreduceRecDoubling => "recursive_doubling",
            AllreduceRing => "ring",
            AllreduceSegRing { .. } => "segmented_ring",
            AllreduceRabenseifner => "rabenseifner",
            AllreduceReduceBcast { .. } => "reduce_bcast",
            AllreduceHierarchical { .. } => "hierarchical",
            AlltoallLinear => "linear",
            AlltoallPairwise => "pairwise",
            AlltoallBruck => "bruck",
            AlltoallLinearSync { .. } => "linear_sync",
            AlltoallSpread => "spread",
            ReduceLinear => "linear",
            ReduceKnomial { .. } => "knomial",
            ReduceBinary { .. } => "binary",
            ReducePipeline { .. } => "pipeline",
            AllgatherLinear => "linear",
            AllgatherRing => "ring",
            AllgatherRecDoubling => "recursive_doubling",
            AllgatherBruck => "bruck",
            AllgatherNeighborExchange => "neighbor_exchange",
            ScatterLinear => "linear",
            ScatterBinomial => "binomial",
            GatherLinear => "linear",
            GatherBinomial => "binomial",
            GatherLinearSync { .. } => "linear_sync",
            BarrierCentral => "central",
            BarrierRecDoubling => "recursive_doubling",
            BarrierDissemination => "dissemination",
            BarrierTree => "tree",
        }
    }

    /// Human-readable parameter suffix, e.g. `seg=8K,chains=4`.
    pub fn param_string(&self) -> String {
        fn seg_str(seg: u64) -> String {
            if seg == 0 {
                "seg=0".to_string()
            } else if seg % 1024 == 0 {
                format!("seg={}K", seg / 1024)
            } else {
                format!("seg={seg}")
            }
        }
        use AlgKind::*;
        match self {
            BcastChain { chains, seg } => format!("{},chains={chains}", seg_str(*seg)),
            BcastPipeline { seg }
            | BcastSplitBinary { seg }
            | BcastBinary { seg }
            | BcastBinomial { seg }
            | AllreduceSegRing { seg }
            | ReduceBinary { seg }
            | ReducePipeline { seg }
            | BcastHierarchical { seg }
            | BcastDoubleTree { seg }
            | AllreduceHierarchical { seg } => seg_str(*seg),
            BcastKnomial { radix, seg }
            | AllreduceReduceBcast { radix, seg }
            | ReduceKnomial { radix, seg } => format!("{},radix={radix}", seg_str(*seg)),
            AlltoallLinearSync { window } | GatherLinearSync { window } => {
                format!("window={window}")
            }
            _ => String::new(),
        }
    }

    /// Compile this algorithm for an instance into per-rank programs.
    pub fn build(&self, topo: &Topology, msize: u64) -> Vec<Program> {
        schedules::build(*self, topo, msize)
    }
}

/// One entry of a library's algorithm list: the library-visible algorithm
/// id `j` plus a bound parameter allocation (together: the paper's
/// `u_{j,l}`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlgorithmConfig {
    /// Library algorithm number `j` (what the user would pass to e.g.
    /// `coll_tuned_bcast_algorithm`).
    pub alg_id: u32,
    /// The fully-parameterized algorithm.
    pub kind: AlgKind,
    /// Benchmarked but excluded from selection (the paper excludes
    /// Open MPI 4.0.2's broadcast algorithm 8, found buggy).
    pub excluded: bool,
}

impl AlgorithmConfig {
    /// Construct a selectable configuration.
    pub fn new(alg_id: u32, kind: AlgKind) -> Self {
        AlgorithmConfig { alg_id, kind, excluded: false }
    }

    /// Mark as benchmark-only (never selectable).
    pub fn excluded(mut self) -> Self {
        self.excluded = true;
        self
    }

    /// Full display name, e.g. `2:chain(seg=64K,chains=8)`.
    pub fn label(&self) -> String {
        let params = self.kind.param_string();
        if params.is_empty() {
            format!("{}:{}", self.alg_id, self.kind.family())
        } else {
            format!("{}:{}({})", self.alg_id, self.kind.family(), params)
        }
    }

    /// Compile for an instance.
    pub fn build(&self, topo: &Topology, msize: u64) -> Vec<Program> {
        self.kind.build(topo, msize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collective_of_kind() {
        assert_eq!(AlgKind::BcastLinear.collective(), Collective::Bcast);
        assert_eq!(AlgKind::AllreduceRing.collective(), Collective::Allreduce);
        assert_eq!(AlgKind::AlltoallBruck.collective(), Collective::Alltoall);
    }

    #[test]
    fn labels_include_params() {
        let c = AlgorithmConfig::new(2, AlgKind::BcastChain { chains: 4, seg: 65536 });
        assert_eq!(c.label(), "2:chain(seg=64K,chains=4)");
        let l = AlgorithmConfig::new(1, AlgKind::BcastLinear);
        assert_eq!(l.label(), "1:linear");
    }

    #[test]
    fn excluded_flag() {
        let c = AlgorithmConfig::new(8, AlgKind::BcastScatterAllgather).excluded();
        assert!(c.excluded);
    }

    #[test]
    fn param_string_zero_segment() {
        assert_eq!(AlgKind::BcastBinomial { seg: 0 }.param_string(), "seg=0");
        assert_eq!(AlgKind::BcastBinomial { seg: 4096 }.param_string(), "seg=4K");
    }
}
