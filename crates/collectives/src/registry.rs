//! Algorithm-configuration registries for the two simulated MPI
//! libraries.
//!
//! The Open MPI lists mirror the `coll/tuned` algorithm numbering of
//! Open MPI 4.0.2 and enumerate the paper's parameter grid (segment sizes
//! 1K/4K/16K/64K/128K plus unsegmented, chain counts 2/4/8/16, k-nomial
//! radices). The Intel MPI lists expose the vendor style instead: many
//! algorithm ids, each a fixed parameter preset. List lengths match
//! Table II: 16 Intel allreduce, 5 Intel alltoall, 12 Intel bcast ids.

use crate::coll::{AlgKind, AlgorithmConfig, Collective};

/// The paper's segment-size grid (bytes); 0 = unsegmented.
pub const SEG_SIZES: [u64; 6] = [0, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 128 << 10];

/// The paper's chain-count grid for the chain broadcast (Fig. 2).
pub const CHAIN_COUNTS: [u32; 4] = [2, 4, 8, 16];

/// Open MPI 4.0.2 broadcast: algorithms 1–9 with the full parameter grid.
/// Algorithm 8 is benchmarked but excluded from selection (the paper
/// reports it buggy in this release).
pub fn open_mpi_bcast() -> Vec<AlgorithmConfig> {
    let mut v = Vec::new();
    v.push(AlgorithmConfig::new(1, AlgKind::BcastLinear));
    for &chains in &CHAIN_COUNTS {
        for &seg in &SEG_SIZES {
            v.push(AlgorithmConfig::new(2, AlgKind::BcastChain { chains, seg }));
        }
    }
    for &seg in &SEG_SIZES {
        v.push(AlgorithmConfig::new(3, AlgKind::BcastPipeline { seg }));
    }
    for &seg in &SEG_SIZES {
        v.push(AlgorithmConfig::new(4, AlgKind::BcastSplitBinary { seg }));
    }
    for &seg in &SEG_SIZES {
        v.push(AlgorithmConfig::new(5, AlgKind::BcastBinary { seg }));
    }
    for &seg in &SEG_SIZES {
        v.push(AlgorithmConfig::new(6, AlgKind::BcastBinomial { seg }));
    }
    for &radix in &[4u32, 8] {
        for &seg in &SEG_SIZES {
            v.push(AlgorithmConfig::new(7, AlgKind::BcastKnomial { radix, seg }));
        }
    }
    v.push(AlgorithmConfig::new(8, AlgKind::BcastScatterAllgather).excluded());
    v.push(AlgorithmConfig::new(9, AlgKind::BcastScatterAllgatherRing));
    v
}

/// Open MPI 4.0.2 allreduce: algorithms 1–6, segmented ring over the
/// segment grid.
pub fn open_mpi_allreduce() -> Vec<AlgorithmConfig> {
    let mut v = vec![
        AlgorithmConfig::new(1, AlgKind::AllreduceLinear),
        AlgorithmConfig::new(2, AlgKind::AllreduceNonoverlapping),
        AlgorithmConfig::new(3, AlgKind::AllreduceRecDoubling),
        AlgorithmConfig::new(4, AlgKind::AllreduceRing),
    ];
    for &seg in SEG_SIZES.iter().filter(|&&s| s != 0) {
        v.push(AlgorithmConfig::new(5, AlgKind::AllreduceSegRing { seg }));
    }
    v.push(AlgorithmConfig::new(6, AlgKind::AllreduceRabenseifner));
    v
}

/// Open MPI 4.0.2 alltoall: linear, pairwise, Bruck, linear-sync, spread.
pub fn open_mpi_alltoall() -> Vec<AlgorithmConfig> {
    vec![
        AlgorithmConfig::new(1, AlgKind::AlltoallLinear),
        AlgorithmConfig::new(2, AlgKind::AlltoallPairwise),
        AlgorithmConfig::new(3, AlgKind::AlltoallBruck),
        AlgorithmConfig::new(4, AlgKind::AlltoallLinearSync { window: 8 }),
        AlgorithmConfig::new(5, AlgKind::AlltoallSpread),
    ]
}

/// Open MPI reduce: linear, chain/pipeline, binary, binomial and
/// k-nomial trees over the segment grid.
pub fn open_mpi_reduce() -> Vec<AlgorithmConfig> {
    let mut v = vec![AlgorithmConfig::new(1, AlgKind::ReduceLinear)];
    for &seg in &SEG_SIZES {
        v.push(AlgorithmConfig::new(2, AlgKind::ReducePipeline { seg }));
    }
    for &seg in &SEG_SIZES {
        v.push(AlgorithmConfig::new(3, AlgKind::ReduceBinary { seg }));
    }
    for &seg in &SEG_SIZES {
        v.push(AlgorithmConfig::new(4, AlgKind::ReduceKnomial { radix: 2, seg }));
    }
    for &radix in &[4u32, 8] {
        for &seg in &SEG_SIZES {
            v.push(AlgorithmConfig::new(5, AlgKind::ReduceKnomial { radix, seg }));
        }
    }
    v
}

/// Open MPI allgather: linear, bruck, recursive doubling, ring, neighbor
/// exchange (the `coll/tuned` set).
pub fn open_mpi_allgather() -> Vec<AlgorithmConfig> {
    vec![
        AlgorithmConfig::new(1, AlgKind::AllgatherLinear),
        AlgorithmConfig::new(2, AlgKind::AllgatherBruck),
        AlgorithmConfig::new(3, AlgKind::AllgatherRecDoubling),
        AlgorithmConfig::new(4, AlgKind::AllgatherRing),
        AlgorithmConfig::new(5, AlgKind::AllgatherNeighborExchange),
    ]
}

/// Open MPI scatter: basic linear and binomial.
pub fn open_mpi_scatter() -> Vec<AlgorithmConfig> {
    vec![
        AlgorithmConfig::new(1, AlgKind::ScatterLinear),
        AlgorithmConfig::new(2, AlgKind::ScatterBinomial),
    ]
}

/// Open MPI gather: basic linear, binomial, windowed linear-sync.
pub fn open_mpi_gather() -> Vec<AlgorithmConfig> {
    vec![
        AlgorithmConfig::new(1, AlgKind::GatherLinear),
        AlgorithmConfig::new(2, AlgKind::GatherBinomial),
        AlgorithmConfig::new(3, AlgKind::GatherLinearSync { window: 8 }),
        AlgorithmConfig::new(3, AlgKind::GatherLinearSync { window: 64 }),
    ]
}

/// Open MPI barrier: central (double ring stand-in), recursive doubling,
/// dissemination ("bruck"), tree.
pub fn open_mpi_barrier() -> Vec<AlgorithmConfig> {
    vec![
        AlgorithmConfig::new(1, AlgKind::BarrierCentral),
        AlgorithmConfig::new(2, AlgKind::BarrierRecDoubling),
        AlgorithmConfig::new(3, AlgKind::BarrierDissemination),
        AlgorithmConfig::new(4, AlgKind::BarrierTree),
    ]
}

/// Open MPI list for a collective.
pub fn open_mpi(coll: Collective) -> Vec<AlgorithmConfig> {
    match coll {
        Collective::Bcast => open_mpi_bcast(),
        Collective::Allreduce => open_mpi_allreduce(),
        Collective::Alltoall => open_mpi_alltoall(),
        Collective::Reduce => open_mpi_reduce(),
        Collective::Allgather => open_mpi_allgather(),
        Collective::Scatter => open_mpi_scatter(),
        Collective::Gather => open_mpi_gather(),
        Collective::Barrier => open_mpi_barrier(),
    }
}

/// Intel MPI 2019 broadcast: 12 algorithm ids, vendor-style fixed
/// presets (Table II, dataset d7).
pub fn intel_bcast() -> Vec<AlgorithmConfig> {
    let presets = [
        AlgKind::BcastLinear,
        AlgKind::BcastBinomial { seg: 0 },
        AlgKind::BcastBinomial { seg: 16 << 10 },
        AlgKind::BcastKnomial { radix: 4, seg: 0 },
        AlgKind::BcastKnomial { radix: 8, seg: 16 << 10 },
        AlgKind::BcastChain { chains: 4, seg: 16 << 10 },
        AlgKind::BcastChain { chains: 8, seg: 64 << 10 },
        AlgKind::BcastPipeline { seg: 16 << 10 },
        AlgKind::BcastPipeline { seg: 64 << 10 },
        AlgKind::BcastBinary { seg: 32 << 10 },
        AlgKind::BcastScatterAllgather,
        AlgKind::BcastScatterAllgatherRing,
    ];
    presets
        .into_iter()
        .enumerate()
        .map(|(i, k)| AlgorithmConfig::new(i as u32 + 1, k))
        .collect()
}

/// Intel MPI 2019 allreduce: 16 algorithm ids (Table II, dataset d5).
pub fn intel_allreduce() -> Vec<AlgorithmConfig> {
    let presets = [
        AlgKind::AllreduceRecDoubling,
        AlgKind::AllreduceRabenseifner,
        AlgKind::AllreduceRing,
        AlgKind::AllreduceSegRing { seg: 1 << 10 },
        AlgKind::AllreduceSegRing { seg: 4 << 10 },
        AlgKind::AllreduceSegRing { seg: 16 << 10 },
        AlgKind::AllreduceSegRing { seg: 64 << 10 },
        AlgKind::AllreduceSegRing { seg: 128 << 10 },
        AlgKind::AllreduceLinear,
        AlgKind::AllreduceNonoverlapping,
        AlgKind::AllreduceReduceBcast { radix: 2, seg: 16 << 10 },
        AlgKind::AllreduceReduceBcast { radix: 4, seg: 0 },
        AlgKind::AllreduceReduceBcast { radix: 4, seg: 16 << 10 },
        AlgKind::AllreduceReduceBcast { radix: 8, seg: 0 },
        AlgKind::AllreduceReduceBcast { radix: 8, seg: 64 << 10 },
        AlgKind::AllreduceReduceBcast { radix: 2, seg: 64 << 10 },
    ];
    presets
        .into_iter()
        .enumerate()
        .map(|(i, k)| AlgorithmConfig::new(i as u32 + 1, k))
        .collect()
}

/// Intel MPI 2019 alltoall: 5 algorithm ids (Table II, dataset d6).
pub fn intel_alltoall() -> Vec<AlgorithmConfig> {
    let presets = [
        AlgKind::AlltoallBruck,
        AlgKind::AlltoallLinear,
        AlgKind::AlltoallPairwise,
        AlgKind::AlltoallLinearSync { window: 8 },
        AlgKind::AlltoallSpread,
    ];
    presets
        .into_iter()
        .enumerate()
        .map(|(i, k)| AlgorithmConfig::new(i as u32 + 1, k))
        .collect()
}

/// Intel MPI presets for the extended collectives (vendor-style fixed
/// parameter allocations).
pub fn intel_extended(coll: Collective) -> Vec<AlgorithmConfig> {
    let presets: Vec<AlgKind> = match coll {
        Collective::Reduce => vec![
            AlgKind::ReduceLinear,
            AlgKind::ReduceKnomial { radix: 2, seg: 0 },
            AlgKind::ReduceKnomial { radix: 2, seg: 16 << 10 },
            AlgKind::ReduceKnomial { radix: 4, seg: 16 << 10 },
            AlgKind::ReduceKnomial { radix: 8, seg: 64 << 10 },
            AlgKind::ReduceBinary { seg: 16 << 10 },
            AlgKind::ReducePipeline { seg: 64 << 10 },
        ],
        Collective::Allgather => vec![
            AlgKind::AllgatherLinear,
            AlgKind::AllgatherBruck,
            AlgKind::AllgatherRecDoubling,
            AlgKind::AllgatherRing,
            AlgKind::AllgatherNeighborExchange,
        ],
        Collective::Scatter => open_mpi_scatter().into_iter().map(|c| c.kind).collect(),
        Collective::Gather => vec![
            AlgKind::GatherLinear,
            AlgKind::GatherBinomial,
            AlgKind::GatherLinearSync { window: 16 },
        ],
        Collective::Barrier => vec![
            AlgKind::BarrierCentral,
            AlgKind::BarrierRecDoubling,
            AlgKind::BarrierDissemination,
            AlgKind::BarrierTree,
        ],
        _ => unreachable!("paper collectives have dedicated intel lists"),
    };
    presets
        .into_iter()
        .enumerate()
        .map(|(i, k)| AlgorithmConfig::new(i as u32 + 1, k))
        .collect()
}

/// Experimental algorithms (topology-aware hierarchical variants and the
/// double tree) — future-work material not part of the paper's library
/// lists, so the cached Table II datasets remain stable. Exercised by
/// the `extended_collectives` experiment and the examples.
pub fn experimental(coll: Collective) -> Vec<AlgorithmConfig> {
    match coll {
        Collective::Bcast => vec![
            AlgorithmConfig::new(101, AlgKind::BcastHierarchical { seg: 0 }),
            AlgorithmConfig::new(101, AlgKind::BcastHierarchical { seg: 16 << 10 }),
            AlgorithmConfig::new(102, AlgKind::BcastDoubleTree { seg: 16 << 10 }),
            AlgorithmConfig::new(102, AlgKind::BcastDoubleTree { seg: 64 << 10 }),
        ],
        Collective::Allreduce => vec![
            AlgorithmConfig::new(101, AlgKind::AllreduceHierarchical { seg: 0 }),
            AlgorithmConfig::new(101, AlgKind::AllreduceHierarchical { seg: 16 << 10 }),
        ],
        _ => Vec::new(),
    }
}

/// Intel MPI list for a collective.
pub fn intel(coll: Collective) -> Vec<AlgorithmConfig> {
    match coll {
        Collective::Bcast => intel_bcast(),
        Collective::Allreduce => intel_allreduce(),
        Collective::Alltoall => intel_alltoall(),
        other => intel_extended(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn open_mpi_bcast_has_nine_algorithm_ids() {
        let ids: HashSet<u32> = open_mpi_bcast().iter().map(|c| c.alg_id).collect();
        assert_eq!(ids, (1..=9).collect());
    }

    #[test]
    fn open_mpi_allreduce_has_six_algorithm_ids() {
        let ids: HashSet<u32> = open_mpi_allreduce().iter().map(|c| c.alg_id).collect();
        assert_eq!(ids, (1..=6).collect());
    }

    #[test]
    fn intel_counts_match_table2() {
        assert_eq!(intel_allreduce().len(), 16); // d5
        assert_eq!(intel_alltoall().len(), 5); // d6
        assert_eq!(intel_bcast().len(), 12); // d7
    }

    #[test]
    fn chain_grid_matches_fig2() {
        let chains: HashSet<u32> = open_mpi_bcast()
            .iter()
            .filter_map(|c| match c.kind {
                AlgKind::BcastChain { chains, .. } => Some(chains),
                _ => None,
            })
            .collect();
        assert_eq!(chains, CHAIN_COUNTS.iter().copied().collect());
    }

    #[test]
    fn exactly_one_excluded_config() {
        let excluded: Vec<_> = open_mpi_bcast().into_iter().filter(|c| c.excluded).collect();
        assert_eq!(excluded.len(), 1);
        assert_eq!(excluded[0].alg_id, 8);
    }

    #[test]
    fn all_configs_are_distinct() {
        for coll in Collective::ALL {
            for list in [open_mpi(coll), intel(coll)] {
                let mut seen = HashSet::new();
                for c in &list {
                    assert!(seen.insert(c.kind), "duplicate {:?}", c.kind);
                    assert_eq!(c.kind.collective(), coll);
                }
            }
        }
    }
}
