//! # mpcp-collectives — MPI collective algorithms as simulator schedules
//!
//! This crate implements the collective algorithm zoo the paper selects
//! over, as *schedule generators*: each algorithm compiles an instance
//! `(collective, message size, topology)` into one [`mpcp_simnet::Program`]
//! per rank, which the discrete-event simulator then executes.
//!
//! Implemented algorithm families (mirroring Open MPI 4.0.2 `coll/tuned`):
//!
//! * **Broadcast**: basic linear, chain (configurable chain count and
//!   segment size), pipeline, split-binary tree, binary tree, binomial
//!   tree, k-nomial tree, scatter + recursive-doubling allgather, scatter
//!   + ring allgather.
//! * **Allreduce**: basic linear (reduce+bcast), nonoverlapping (binomial
//!   reduce + binomial bcast), recursive doubling, ring, segmented ring,
//!   Rabenseifner (reduce-scatter + allgather), and k-nomial
//!   reduce+broadcast presets used by the simulated Intel MPI library.
//! * **Alltoall**: basic linear (nonblocking), pairwise exchange, Bruck,
//!   windowed linear-sync, spread.
//!
//! On top of the generators, [`library`] assembles two *simulated MPI
//! libraries* — "Open MPI 4.0.2" with the hard-coded threshold decision
//! rules, and "Intel MPI 2019" whose default logic is produced by an
//! `mpitune`-style exhaustive grid search — and [`verify`] provides
//! volume/structure invariants used by the test suite.

#![forbid(unsafe_code)]

pub mod builder;
pub mod coll;
pub mod decision;
pub mod library;
pub mod registry;
pub mod schedules;
pub mod trees;
pub mod verify;

pub use coll::{AlgKind, AlgorithmConfig, Collective};
pub use decision::{DecisionLogic, IntelDecision, OpenMpiDecision};
pub use library::MpiLibrary;
