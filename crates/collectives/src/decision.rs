//! Default algorithm-selection logics ("algorithm 0") of the simulated
//! MPI libraries.
//!
//! * [`OpenMpiDecision`] mirrors the *hard-coded* threshold rules of
//!   Open MPI's `coll_tuned_decision_fixed.c`: message-size and
//!   communicator-size cutoffs baked in at library-release time, tuned on
//!   machines other than the one at hand. This is exactly the mechanism
//!   the paper exploits: the fixed rules are reasonable everywhere and
//!   optimal almost nowhere.
//! * [`IntelDecision`] mimics the vendor approach (`mpitune`): an
//!   exhaustive offline sweep over a tuning grid on the *same* machine,
//!   snapped to the nearest grid point at call time. The paper finds this
//!   default near-optimal, which our reproduction preserves.

use std::collections::BTreeMap;

use mpcp_simnet::{NetworkModel, Simulator, Topology};
use serde::{Deserialize, Serialize};

use crate::coll::{AlgKind, AlgorithmConfig, Collective};

/// A library's built-in algorithm selection heuristic.
pub trait DecisionLogic: Send + Sync {
    /// Index into the library's configuration list for this collective.
    fn select(&self, coll: Collective, msize: u64, topo: &Topology) -> usize;

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

/// Find the index of `kind` in `configs`, panicking if the registry and
/// the decision rules ever drift apart (checked by tests).
fn index_of(configs: &[AlgorithmConfig], kind: AlgKind) -> usize {
    configs
        .iter()
        .position(|c| c.kind == kind)
        .unwrap_or_else(|| panic!("decision logic chose unregistered config {kind:?}"))
}

/// Open MPI 4.0.2-style fixed decision rules.
///
/// The thresholds approximate the shipped `coll_tuned` fixed rules; the
/// load-bearing property is that they are static and machine-agnostic.
pub struct OpenMpiDecision {
    configs: BTreeMap<Collective, Vec<AlgorithmConfig>>,
}

impl OpenMpiDecision {
    /// Build against the full registry (all supported collectives).
    pub fn from_registry() -> Self {
        let mut configs = BTreeMap::new();
        for coll in Collective::ALL {
            configs.insert(coll, crate::registry::open_mpi(coll));
        }
        OpenMpiDecision { configs }
    }

    /// Build against explicit registry lists.
    pub fn new(
        bcast: Vec<AlgorithmConfig>,
        allreduce: Vec<AlgorithmConfig>,
        alltoall: Vec<AlgorithmConfig>,
    ) -> Self {
        let mut d = Self::from_registry();
        d.configs.insert(Collective::Bcast, bcast);
        d.configs.insert(Collective::Allreduce, allreduce);
        d.configs.insert(Collective::Alltoall, alltoall);
        d
    }

    fn bcast_rule(&self, m: u64, p: u32) -> AlgKind {
        if p <= 2 {
            AlgKind::BcastLinear
        } else if m <= 2048 {
            AlgKind::BcastBinomial { seg: 0 }
        } else if m <= 64 << 10 {
            AlgKind::BcastSplitBinary { seg: 1 << 10 }
        } else if m <= 512 << 10 {
            AlgKind::BcastBinary { seg: 16 << 10 }
        } else if p <= 24 {
            // Small communicators: a deep pipeline still pays off.
            AlgKind::BcastPipeline { seg: 128 << 10 }
        } else {
            AlgKind::BcastBinary { seg: 64 << 10 }
        }
    }

    fn allreduce_rule(&self, m: u64, p: u32) -> AlgKind {
        if p <= 2 || m <= 10_000 {
            AlgKind::AllreduceRecDoubling
        } else if m <= 100_000 {
            AlgKind::AllreduceRing
        } else {
            AlgKind::AllreduceSegRing { seg: 128 << 10 }
        }
    }

    fn alltoall_rule(&self, m: u64, _p: u32) -> AlgKind {
        if m <= 512 {
            AlgKind::AlltoallBruck
        } else if m <= 32 << 10 {
            AlgKind::AlltoallLinear
        } else {
            AlgKind::AlltoallPairwise
        }
    }

    fn reduce_rule(&self, m: u64, p: u32) -> AlgKind {
        if p <= 2 {
            AlgKind::ReduceLinear
        } else if m <= 4096 {
            AlgKind::ReduceKnomial { radix: 2, seg: 0 }
        } else if m <= 512 << 10 {
            AlgKind::ReduceKnomial { radix: 2, seg: 16 << 10 }
        } else if p <= 24 {
            AlgKind::ReducePipeline { seg: 128 << 10 }
        } else {
            AlgKind::ReduceBinary { seg: 64 << 10 }
        }
    }

    fn allgather_rule(&self, m: u64, p: u32) -> AlgKind {
        if m <= 512 {
            AlgKind::AllgatherBruck
        } else if m * p as u64 <= 256 << 10 {
            AlgKind::AllgatherRecDoubling
        } else if p % 2 == 0 {
            AlgKind::AllgatherNeighborExchange
        } else {
            AlgKind::AllgatherRing
        }
    }

    fn scatter_rule(&self, m: u64, p: u32) -> AlgKind {
        if m <= 8192 && p > 4 {
            AlgKind::ScatterBinomial
        } else {
            AlgKind::ScatterLinear
        }
    }

    fn gather_rule(&self, m: u64, p: u32) -> AlgKind {
        if m <= 8192 && p > 4 {
            AlgKind::GatherBinomial
        } else if p > 64 {
            AlgKind::GatherLinearSync { window: 8 }
        } else {
            AlgKind::GatherLinear
        }
    }

    fn barrier_rule(&self, p: u32) -> AlgKind {
        if p <= 4 {
            AlgKind::BarrierRecDoubling
        } else {
            AlgKind::BarrierDissemination
        }
    }
}

impl DecisionLogic for OpenMpiDecision {
    fn select(&self, coll: Collective, msize: u64, topo: &Topology) -> usize {
        let p = topo.size();
        let kind = match coll {
            Collective::Bcast => self.bcast_rule(msize, p),
            Collective::Allreduce => self.allreduce_rule(msize, p),
            Collective::Alltoall => self.alltoall_rule(msize, p),
            Collective::Reduce => self.reduce_rule(msize, p),
            Collective::Allgather => self.allgather_rule(msize, p),
            Collective::Scatter => self.scatter_rule(msize, p),
            Collective::Gather => self.gather_rule(msize, p),
            Collective::Barrier => self.barrier_rule(p),
        };
        index_of(&self.configs[&coll], kind)
    }

    fn name(&self) -> &'static str {
        "ompi-fixed"
    }
}

/// The tuning grid an [`IntelDecision`] is swept over.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TuningGrid {
    /// Node counts benchmarked by the vendor sweep.
    pub nodes: Vec<u32>,
    /// Processes-per-node values.
    pub ppn: Vec<u32>,
    /// Message sizes (bytes).
    pub msizes: Vec<u64>,
}

impl TuningGrid {
    /// The vendor-style default grid, clipped to a machine's limits.
    pub fn vendor_default(max_nodes: u32, max_ppn: u32) -> TuningGrid {
        TuningGrid {
            nodes: [2u32, 4, 8, 16, 32].iter().copied().filter(|&n| n <= max_nodes).collect(),
            ppn: [1u32, 4, 8, 16, 32, 48].iter().copied().filter(|&n| n <= max_ppn).collect(),
            msizes: vec![
                1,
                16,
                256,
                1 << 10,
                4 << 10,
                16 << 10,
                64 << 10,
                512 << 10,
                1 << 20,
                4 << 20,
            ],
        }
    }

    /// A tiny grid for tests.
    pub fn tiny() -> TuningGrid {
        TuningGrid {
            nodes: vec![2, 4],
            ppn: vec![1, 2],
            msizes: vec![16, 16 << 10, 1 << 20],
        }
    }
}

/// Snap `x` to the nearest grid value (log-scale for message sizes).
fn nearest(grid: &[u32], x: u32) -> u32 {
    *grid
        .iter()
        .min_by_key(|&&g| (g as i64 - x as i64).unsigned_abs())
        .expect("empty tuning grid")
}

fn nearest_log(grid: &[u64], x: u64) -> u64 {
    let lx = (x.max(1) as f64).ln();
    *grid
        .iter()
        .min_by(|&&a, &&b| {
            let da = ((a.max(1) as f64).ln() - lx).abs();
            let db = ((b.max(1) as f64).ln() - lx).abs();
            da.total_cmp(&db)
        })
        .expect("empty tuning grid")
}

/// An `mpitune`-style exhaustively tuned decision table for one machine.
pub struct IntelDecision {
    grid: TuningGrid,
    /// `(collective, msize, nodes, ppn) -> config index`.
    table: BTreeMap<(Collective, u64, u32, u32), usize>,
}

impl IntelDecision {
    /// Run the vendor sweep: for every grid point and collective,
    /// simulate every selectable configuration (noise-free) and record
    /// the argmin.
    ///
    /// This models what Intel's tuning utilities do at library-install
    /// time; it is the reason the paper finds Intel MPI's default to be
    /// near-optimal on its own machine.
    pub fn tune(
        model: &NetworkModel,
        configs: &BTreeMap<Collective, Vec<AlgorithmConfig>>,
        grid: TuningGrid,
    ) -> IntelDecision {
        let mut table = BTreeMap::new();
        for (&coll, list) in configs {
            for &n in &grid.nodes {
                for &ppn in &grid.ppn {
                    let topo = Topology::new(n, ppn);
                    let sim = Simulator::new(model, &topo);
                    for &m in &grid.msizes {
                        let mut best = (f64::INFINITY, 0usize);
                        for (idx, cfg) in list.iter().enumerate() {
                            if cfg.excluded {
                                continue;
                            }
                            let progs = cfg.build(&topo, m);
                            let t = sim
                                .run(&progs)
                                .unwrap_or_else(|e| panic!("{} failed: {e}", cfg.label()))
                                .makespan()
                                .as_secs_f64();
                            if t < best.0 {
                                best = (t, idx);
                            }
                        }
                        table.insert((coll, m, n, ppn), best.1);
                    }
                }
            }
        }
        IntelDecision { grid, table }
    }

    /// Number of tuned grid entries.
    pub fn entries(&self) -> usize {
        self.table.len()
    }
}

impl DecisionLogic for IntelDecision {
    fn select(&self, coll: Collective, msize: u64, topo: &Topology) -> usize {
        let m = nearest_log(&self.grid.msizes, msize);
        let n = nearest(&self.grid.nodes, topo.nodes());
        let ppn = nearest(&self.grid.ppn, topo.ppn());
        *self
            .table
            .get(&(coll, m, n, ppn))
            .unwrap_or_else(|| panic!("untuned grid point ({coll:?}, {m}, {n}, {ppn})"))
    }

    fn name(&self) -> &'static str {
        "impi-tuned"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;
    use mpcp_simnet::Machine;

    fn ompi_decision() -> OpenMpiDecision {
        OpenMpiDecision::new(
            registry::open_mpi_bcast(),
            registry::open_mpi_allreduce(),
            registry::open_mpi_alltoall(),
        )
    }

    #[test]
    fn open_mpi_rules_map_to_registered_configs() {
        let d = ompi_decision();
        let bcast = registry::open_mpi_bcast();
        let allreduce = registry::open_mpi_allreduce();
        let alltoall = registry::open_mpi_alltoall();
        for &m in &[1u64, 100, 2048, 4096, 20_000, 200_000, 2 << 20, 8 << 20] {
            for (n, ppn) in [(2u32, 1u32), (4, 4), (16, 16), (36, 32)] {
                let topo = Topology::new(n, ppn);
                let bi = d.select(Collective::Bcast, m, &topo);
                assert!(bi < bcast.len());
                assert!(!bcast[bi].excluded);
                let ai = d.select(Collective::Allreduce, m, &topo);
                assert!(ai < allreduce.len());
                let ti = d.select(Collective::Alltoall, m, &topo);
                assert!(ti < alltoall.len());
            }
        }
    }

    #[test]
    fn extended_rules_map_to_registered_configs() {
        // index_of panics if a rule ever names an unregistered config;
        // sweep the full grid for every collective.
        let d = OpenMpiDecision::from_registry();
        for coll in Collective::ALL {
            let list = registry::open_mpi(coll);
            for &m in &[0u64, 1, 512, 4096, 16 << 10, 100_000, 512 << 10, 1 << 20, 8 << 20] {
                for (n, ppn) in [(2u32, 1u32), (3, 2), (5, 4), (16, 16), (36, 32), (48, 48)] {
                    let topo = Topology::new(n, ppn);
                    let idx = d.select(coll, m, &topo);
                    assert!(idx < list.len(), "{coll:?} m={m} {n}x{ppn}");
                    assert!(!list[idx].excluded, "{coll:?} selected excluded config");
                }
            }
        }
    }

    #[test]
    fn open_mpi_rules_are_size_sensitive() {
        let d = ompi_decision();
        let topo = Topology::new(16, 16);
        let small = d.select(Collective::Bcast, 16, &topo);
        let large = d.select(Collective::Bcast, 4 << 20, &topo);
        assert_ne!(small, large);
    }

    #[test]
    fn nearest_helpers() {
        assert_eq!(nearest(&[2, 4, 8, 16, 32], 27), 32);
        assert_eq!(nearest(&[2, 4, 8, 16, 32], 5), 4);
        assert_eq!(nearest_log(&[16, 1024, 1 << 20], 64 << 10), 1 << 20);
        assert_eq!(nearest_log(&[16, 1024, 1 << 20], 2000), 1024);
    }

    #[test]
    fn intel_tuning_builds_and_selects() {
        let machine = Machine::hydra();
        let mut configs = BTreeMap::new();
        configs.insert(Collective::Alltoall, registry::intel_alltoall());
        let d = IntelDecision::tune(&machine.model, &configs, TuningGrid::tiny());
        assert_eq!(d.entries(), 2 * 2 * 3);
        let topo = Topology::new(3, 2);
        let idx = d.select(Collective::Alltoall, 100, &topo);
        assert!(idx < registry::intel_alltoall().len());
    }

    #[test]
    fn intel_tuning_matches_manual_argmin() {
        // The tuned table must agree with an independent exhaustive
        // sweep at a tuned grid point.
        let machine = Machine::jupiter();
        let list = registry::intel_alltoall();
        let mut configs = BTreeMap::new();
        configs.insert(Collective::Alltoall, list.clone());
        let d = IntelDecision::tune(&machine.model, &configs, TuningGrid::tiny());
        let topo = Topology::new(4, 2);
        let m = 16 << 10;
        let sim = mpcp_simnet::Simulator::new(&machine.model, &topo);
        let manual_best = list
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                let ta = sim.run(&a.build(&topo, m)).unwrap().makespan();
                let tb = sim.run(&b.build(&topo, m)).unwrap().makespan();
                ta.cmp(&tb)
            })
            .unwrap()
            .0;
        assert_eq!(d.select(Collective::Alltoall, m, &topo), manual_best);
    }
}
