//! Tree and chain topologies over *virtual ranks*.
//!
//! All generators work on virtual ranks `v = (rank - root) mod p`, so the
//! root is always virtual rank 0; with the paper's root-0 benchmarks the
//! mapping is the identity, but the helpers stay general.

/// Virtual-rank mapping.
#[inline]
pub fn to_vrank(rank: u32, root: u32, p: u32) -> u32 {
    (rank + p - root) % p
}

/// Inverse virtual-rank mapping.
#[inline]
pub fn from_vrank(v: u32, root: u32, p: u32) -> u32 {
    (v + root) % p
}

/// Parent of `v` in the binomial tree (lowest-set-bit convention, as in
/// MPICH's binomial broadcast). Root (`v == 0`) has no parent.
pub fn binomial_parent(v: u32) -> Option<u32> {
    if v == 0 {
        None
    } else {
        Some(v & (v - 1)) // clear lowest set bit
    }
}

/// Children of `v` in the binomial tree over `p` ranks, largest subtree
/// first (the order a pipelined broadcast sends in).
pub fn binomial_children(v: u32, p: u32) -> Vec<u32> {
    let mut children = Vec::new();
    // Highest mask: largest power of two < p for the root, otherwise the
    // lowest set bit of v bounds the subtree.
    let top = if v == 0 {
        let mut m = 1u32;
        while m < p {
            m <<= 1;
        }
        m >> 1
    } else {
        (v & v.wrapping_neg()) >> 1 // lowest set bit / 2
    };
    let mut mask = top;
    while mask > 0 {
        let c = v + mask;
        if c < p {
            children.push(c);
        }
        mask >>= 1;
    }
    children
}

/// Parent of `v` in the k-nomial tree with the given radix (lowest
/// nonzero base-k digit convention).
pub fn knomial_parent(v: u32, radix: u32) -> Option<u32> {
    assert!(radix >= 2);
    if v == 0 {
        return None;
    }
    let mut mask = 1u32;
    loop {
        let digit = (v / mask) % radix;
        if digit != 0 {
            return Some(v - digit * mask);
        }
        mask *= radix;
    }
}

/// Children of `v` in the k-nomial tree over `p` ranks, largest subtrees
/// first.
pub fn knomial_children(v: u32, radix: u32, p: u32) -> Vec<u32> {
    assert!(radix >= 2);
    // Highest digit position available to v: below its lowest nonzero
    // digit (or the global top for the root).
    let mut top = 1u64;
    while top * radix as u64 <= (p.saturating_sub(1)) as u64 {
        top *= radix as u64;
    }
    let limit = if v == 0 {
        u64::MAX
    } else {
        // lowest nonzero digit position of v
        let mut mask = 1u64;
        while (v as u64 / mask) % radix as u64 == 0 {
            mask *= radix as u64;
        }
        mask
    };
    let mut children = Vec::new();
    let mut mask = top;
    while mask >= 1 {
        if mask < limit {
            for d in 1..radix as u64 {
                let c = v as u64 + d * mask;
                if c < p as u64 {
                    children.push(c as u32);
                }
            }
        }
        if mask == 1 {
            break;
        }
        mask /= radix as u64;
    }
    children
}

/// Parent in the complete binary tree (children `2v+1`, `2v+2`).
pub fn binary_parent(v: u32) -> Option<u32> {
    if v == 0 {
        None
    } else {
        Some((v - 1) / 2)
    }
}

/// Children in the complete binary tree over `p` ranks.
pub fn binary_children(v: u32, p: u32) -> Vec<u32> {
    [2 * v + 1, 2 * v + 2].into_iter().filter(|&c| c < p).collect()
}

/// Split the non-root virtual ranks `1..p` into `chains` contiguous
/// chains. Returns for each virtual rank `v >= 1` the pair
/// `(predecessor, successor)` where predecessor 0 means the root feeds
/// this rank and successor `None` ends the chain, plus the list of chain
/// heads.
pub struct Chains {
    /// `prev[v]` for v in 1..p: the rank this rank receives from.
    pub prev: Vec<u32>,
    /// `next[v]`: the rank this rank forwards to, if any.
    pub next: Vec<Option<u32>>,
    /// First rank of each chain (all fed directly by the root).
    pub heads: Vec<u32>,
}

/// Build `chains` contiguous chains over virtual ranks `1..p`.
pub fn chains(p: u32, chains: u32) -> Chains {
    assert!(p >= 1);
    let nonroot = p.saturating_sub(1);
    let c = chains.max(1).min(nonroot.max(1));
    let len = nonroot.div_ceil(c.max(1)).max(1);
    let mut prev = vec![0u32; p as usize];
    let mut next = vec![None; p as usize];
    let mut heads = Vec::new();
    for v in 1..p {
        let idx = v - 1;
        let pos = idx % len;
        if pos == 0 {
            heads.push(v);
            prev[v as usize] = 0;
        } else {
            prev[v as usize] = v - 1;
        }
        let is_last_in_chain = pos + 1 == len || v == p - 1;
        if !is_last_in_chain {
            next[v as usize] = Some(v + 1);
        }
    }
    Chains { prev, next, heads }
}

/// Largest power of two ≤ `p`.
#[inline]
pub fn pow2_floor(p: u32) -> u32 {
    if p == 0 {
        0
    } else {
        1 << (31 - p.leading_zeros())
    }
}

/// `ceil(log2(p))`.
#[inline]
pub fn log2_ceil(p: u32) -> u32 {
    if p <= 1 {
        0
    } else {
        32 - (p - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn check_tree<P, C>(p: u32, parent: P, children: C)
    where
        P: Fn(u32) -> Option<u32>,
        C: Fn(u32) -> Vec<u32>,
    {
        // Every non-root has exactly one parent, and is listed in that
        // parent's children.
        let mut seen = HashSet::new();
        for v in 1..p {
            let par = parent(v).unwrap_or_else(|| panic!("rank {v} has no parent"));
            assert!(par < v, "parent {par} of {v} must be smaller");
            assert!(
                children(par).contains(&v),
                "rank {v} missing from children of {par} (got {:?})",
                children(par)
            );
            assert!(seen.insert(v));
        }
        // No child is claimed twice.
        let mut claimed = HashSet::new();
        for v in 0..p {
            for c in children(v) {
                assert!(c < p);
                assert!(claimed.insert(c), "rank {c} claimed twice");
            }
        }
        assert_eq!(claimed.len() as u32, p - 1);
    }

    #[test]
    fn binomial_tree_is_consistent() {
        for p in [2u32, 3, 4, 5, 7, 8, 13, 16, 31, 33, 100] {
            check_tree(p, binomial_parent, |v| binomial_children(v, p));
        }
    }

    #[test]
    fn binomial_root_children_for_pow2() {
        assert_eq!(binomial_children(0, 8), vec![4, 2, 1]);
        assert_eq!(binomial_children(4, 8), vec![6, 5]);
        assert_eq!(binomial_children(0, 2), vec![1]);
    }

    #[test]
    fn knomial_tree_is_consistent() {
        for radix in [2u32, 3, 4, 8] {
            for p in [2u32, 3, 5, 8, 9, 16, 27, 30, 65] {
                check_tree(p, |v| knomial_parent(v, radix), |v| {
                    knomial_children(v, radix, p)
                });
            }
        }
    }

    #[test]
    fn knomial_radix2_equals_binomial() {
        for p in [2u32, 7, 8, 19, 32] {
            for v in 0..p {
                let mut a = knomial_children(v, 2, p);
                let mut b = binomial_children(v, p);
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "p={p} v={v}");
                assert_eq!(knomial_parent(v, 2), binomial_parent(v));
            }
        }
    }

    #[test]
    fn binary_tree_is_consistent() {
        for p in [2u32, 3, 6, 7, 15, 16, 33] {
            check_tree(p, binary_parent, |v| binary_children(v, p));
        }
    }

    #[test]
    fn chains_cover_all_ranks() {
        for p in [2u32, 3, 5, 6, 9, 17, 23, 33] {
            for c in [1u32, 2, 3, 4, 8, 16] {
                let ch = chains(p, c);
                assert!(!ch.heads.is_empty());
                assert!(ch.heads.len() as u32 <= c.max(1));
                // Walk every chain; together they must cover 1..p.
                let mut seen = HashSet::new();
                for &h in &ch.heads {
                    let mut cur = h;
                    loop {
                        assert!(seen.insert(cur), "rank {cur} in two chains (p={p},c={c})");
                        match ch.next[cur as usize] {
                            Some(n) => {
                                assert_eq!(ch.prev[n as usize], cur);
                                cur = n;
                            }
                            None => break,
                        }
                    }
                }
                assert_eq!(seen.len() as u32, p - 1, "p={p} c={c}");
            }
        }
    }

    #[test]
    fn vrank_roundtrip() {
        let p = 12;
        for root in 0..p {
            for r in 0..p {
                let v = to_vrank(r, root, p);
                assert_eq!(from_vrank(v, root, p), r);
            }
            assert_eq!(to_vrank(root, root, p), 0);
        }
    }

    #[test]
    fn pow2_helpers() {
        assert_eq!(pow2_floor(1), 1);
        assert_eq!(pow2_floor(7), 4);
        assert_eq!(pow2_floor(8), 8);
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(9), 4);
    }
}
